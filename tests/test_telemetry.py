"""Tests for the SLO telemetry pipeline: windowing, burn-rate alerting,
derived tracepoints, budgeted serialization, dashboards, golden purity."""

import json
import os

import pytest

from repro.obs.dashboard import render_frame, render_html, write_html
from repro.obs.slo import BurnRatePolicy, SLObjective, SLOEvaluator
from repro.obs.telemetry import (
    SERIES_COLUMNS,
    TELEMETRY_SCHEMA,
    TelemetryPipeline,
    coalesce_rows,
    tenant_of,
)
from repro.obs.tracepoints import TracepointBus, is_derived

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _load_golden(case_id):
    with open(os.path.join(GOLDEN_DIR, "%s.json" % case_id)) as handle:
        return json.load(handle)


def _fast_policy():
    """One-window burn decisions: breach/recover on the next close."""
    return BurnRatePolicy(short_windows=1, long_windows=1,
                          threshold=2.0, clear_below=1.0)


# -- tenant attribution ----------------------------------------------------

def test_tenant_of_scale_and_role_names():
    assert tenant_of("t3-oltp") == "t3"
    assert tenant_of("t41-cv7") == "t41"
    assert tenant_of("victim") == "victim"
    assert tenant_of("noisy-purge") == "noisy"
    assert tenant_of("other-bg") == "other"
    assert tenant_of("mysqld-io") is None
    assert tenant_of(None) is None


# -- windowing -------------------------------------------------------------

def test_requests_land_in_their_virtual_time_window():
    pipeline = TelemetryPipeline(window_us=100_000)
    pipeline.record_request("t0", 500, 10_000)
    pipeline.record_request("t0", 700, 90_000)
    pipeline.record_request("t0", 900, 150_000)   # closes window 0
    pipeline.finalize(200_000)                    # closes window 1
    assert [row[0] for row in pipeline.rows] == [0, 1]
    assert [row[1] for row in pipeline.rows] == [2, 1]
    state = pipeline.tenants["t0"]
    assert state.requests == 3
    assert state.latency.count == 3


def test_window_percentiles_come_from_window_sketch():
    pipeline = TelemetryPipeline(window_us=100_000)
    for latency in (100, 200, 10_000):
        pipeline.record_request("t0", latency, 50_000)
    pipeline.finalize(100_000)
    row = pipeline.rows[0]
    columns = dict(zip(SERIES_COLUMNS, row))
    assert columns["requests"] == 3
    assert columns["p50_us"] >= 200
    assert columns["p99_us"] >= 10_000


def test_finalize_without_traffic_produces_no_rows():
    pipeline = TelemetryPipeline()
    pipeline.finalize()
    assert pipeline.rows == []


def test_slowdown_sketched_in_milli_units():
    pipeline = TelemetryPipeline()
    pipeline.record_request("victim", 3_000, 1_000, nominal_us=1_000)
    sketch = pipeline.tenants["victim"].slowdown
    assert sketch.count == 1
    assert sketch.min_value == 3_000   # 3.0x in milli-units


# -- bus handlers ----------------------------------------------------------

class _FakePBox:
    def __init__(self, psid):
        self.psid = psid


def test_wait_time_attributed_via_futex_and_enqueue():
    bus = TracepointBus()
    pipeline = TelemetryPipeline().attach(bus)
    bus.point("sched.enqueue").fire(0, tid=7, name="t2-oltp")
    bus.point("futex.wait").fire(1_000, tid=7, key="k", waiters=1)
    bus.point("sched.enqueue").fire(5_000, tid=7, name="t2-oltp")
    wait = pipeline.tenants["t2"].wait
    assert wait.count == 1
    assert wait.min_value == 4_000


def test_pbox_create_maps_tid_to_tenant():
    bus = TracepointBus()
    pipeline = TelemetryPipeline().attach(bus)
    bus.point("pbox.create").fire(0, tid=9, name="t5-batch",
                                  pbox=_FakePBox(3))
    bus.point("futex.wait").fire(100, tid=9, key="k", waiters=1)
    bus.point("sched.enqueue").fire(600, tid=9, name=None)
    assert pipeline.tenants["t5"].wait.count == 1


def test_penalty_event_and_active_columns():
    bus = TracepointBus()
    pipeline = TelemetryPipeline(window_us=100_000).attach(bus)
    bus.point("pbox.event").fire(10, pbox=_FakePBox(1), event="HOLD")
    bus.point("pbox.event").fire(20, pbox=_FakePBox(2), event="HOLD")
    bus.point("pbox.penalty").fire(30, pbox=_FakePBox(2), delay_us=750)
    pipeline.finalize(100_000)
    columns = dict(zip(SERIES_COLUMNS, pipeline.rows[0]))
    assert columns["events"] == 2
    assert columns["penalties"] == 1
    assert columns["penalty_us"] == 750
    assert columns["active"] == 2    # psids 1 and 2 seen this window


class _FakeManager:
    def __init__(self):
        self.active = {10, 11, 12}

    def drain_active(self):
        active, self.active = self.active, set()
        return active


def test_active_set_prefers_manager_dirty_set():
    bus = TracepointBus()
    manager = _FakeManager()
    pipeline = TelemetryPipeline(window_us=100_000).attach(
        bus, manager=manager)
    pipeline.record_request("t0", 100, 50_000)
    pipeline.finalize(100_000)
    columns = dict(zip(SERIES_COLUMNS, pipeline.rows[0]))
    assert columns["active"] == 3
    assert manager.active == set()    # drained, not just read


def test_active_window_boundary_no_double_count():
    """A pBox event at exactly a window boundary counts once.

    The manager fires ``pbox.event`` *before* marking the psid active:
    the subscriber rolls the outgoing window first, so a psid whose
    only event lands exactly on the boundary belongs to the window the
    event opens -- not to both.  (Regression: ``repro scale
    --telemetry`` double-counted such a pBox in the ``active`` series.)
    """
    from repro.core import IsolationRule, PBoxManager, StateEvent
    from repro.sim import Kernel
    from repro.sim.syscalls import Sleep

    kernel = Kernel(cores=1, seed=1)
    manager = PBoxManager(kernel)
    pipeline = TelemetryPipeline(window_us=100_000).attach(
        kernel.trace, manager=manager)

    def body():
        pbox = manager.create(IsolationRule())
        yield Sleep(us=100_000)        # wake exactly at the boundary
        manager.update(pbox, "res", StateEvent.HOLD)
        yield Sleep(us=50_000)

    kernel.spawn(body, name="t0-w")
    kernel.run(until_us=250_000)
    pipeline.finalize(kernel.now_us)
    active = [dict(zip(SERIES_COLUMNS, row))["active"]
              for row in pipeline.rows]
    # One event at t=100,000: window [0,100k) saw nothing, window
    # [100k,200k) saw psid 1 exactly once -- and only once in total
    # (the pre-fix subscriber counted it in both windows).
    assert active[:2] == [0, 1]
    assert sum(active) == 1


def test_detach_stops_accounting():
    bus = TracepointBus()
    pipeline = TelemetryPipeline().attach(bus)
    bus.point("pbox.penalty").fire(10, pbox=_FakePBox(1), delay_us=100)
    pipeline.detach()
    bus.point("pbox.penalty").fire(20, pbox=_FakePBox(1), delay_us=100)
    pipeline.finalize(100_000)
    columns = dict(zip(SERIES_COLUMNS, pipeline.rows[0]))
    assert columns["penalties"] == 1


# -- SLO objectives and burn-rate state machine ----------------------------

def test_objective_judges_latency_and_slowdown():
    objective = SLObjective(latency_us=1_000, slowdown=3.0, target=0.9)
    assert objective.is_good(500, 1.0)
    assert not objective.is_good(2_000, 1.0)      # latency bound
    assert not objective.is_good(500, 4.0)        # slowdown bound
    assert objective.is_good(500, None)           # unknown slowdown: pass
    assert objective.error_budget == pytest.approx(0.1)


def test_objective_and_policy_validation():
    with pytest.raises(ValueError):
        SLObjective()                              # no bound at all
    with pytest.raises(ValueError):
        SLObjective(latency_us=1, target=1.0)      # target out of range
    with pytest.raises(ValueError):
        BurnRatePolicy(short_windows=5, long_windows=2)
    with pytest.raises(ValueError):
        BurnRatePolicy(threshold=1.0, clear_below=2.0)


def test_breach_requires_both_windows_burning():
    evaluator = SLOEvaluator(
        {"a": SLObjective(latency_us=100, target=0.9)},
        policy=BurnRatePolicy(short_windows=1, long_windows=3,
                              threshold=2.0, clear_below=1.0))
    # One hot window: short burns, but the long window is still diluted
    # by nothing -- a single window IS the long window's only content,
    # so instead dilute it with two good windows first.
    assert evaluator.observe_window("a", 100, 0, 100_000) == []
    assert evaluator.observe_window("a", 100, 0, 200_000) == []
    # 10 bad / 210 total over the long window: burn 10/210/0.1 < 2.
    events = evaluator.observe_window("a", 0, 10, 300_000)
    assert events == []
    assert evaluator.breached_tenants() == []
    # Sustained burn: the long window is now mostly bad too.
    events = evaluator.observe_window("a", 0, 100, 400_000)
    assert [event["kind"] for event in events] == ["breach"]
    assert evaluator.breached_tenants() == ["a"]


def test_recover_clears_on_quiet_short_window():
    evaluator = SLOEvaluator(
        {"a": SLObjective(latency_us=100, target=0.9)},
        policy=_fast_policy())
    events = evaluator.observe_window("a", 0, 50, 100_000)
    assert [event["kind"] for event in events] == ["breach"]
    events = evaluator.observe_window("a", 0, 0, 200_000)
    assert [event["kind"] for event in events] == ["recover"]
    assert events[0]["breach_us"] == 100_000
    assert evaluator.breached_tenants() == []


def test_unmonitored_tenant_produces_no_events():
    evaluator = SLOEvaluator({}, default=None)
    assert evaluator.observe_window("x", 0, 1_000, 100_000) == []
    assert evaluator.burn_rates("x") == (0.0, 0.0)


# -- pipeline + evaluator + derived tracepoints ----------------------------

def _breaching_pipeline(bus=None):
    evaluator = SLOEvaluator(
        {"t0": SLObjective(latency_us=100, target=0.9)},
        policy=_fast_policy())
    pipeline = TelemetryPipeline(window_us=100_000, evaluator=evaluator)
    if bus is not None:
        pipeline.attach(bus)
    return pipeline


def test_pipeline_emits_breach_and_recover_events():
    pipeline = _breaching_pipeline()
    for _ in range(20):
        pipeline.record_request("t0", 5_000, 50_000)   # all bad
    # Rolling past two idle windows closes the hot one (breach) and a
    # quiet one (recover).
    pipeline.record_request("t0", 50, 250_000)
    pipeline.finalize(300_000)
    kinds = [event["kind"] for event in pipeline.slo_events]
    assert kinds[:2] == ["breach", "recover"]
    columns = dict(zip(SERIES_COLUMNS, pipeline.rows[0]))
    assert columns["bad"] == 20
    assert columns["breached"] == 1


def test_slo_tracepoints_fire_on_the_bus():
    bus = TracepointBus()
    fired = []
    bus.subscribe("slo.breach",
                  lambda name, t, fields: fired.append((name, t, fields)))
    bus.subscribe("slo.recover",
                  lambda name, t, fields: fired.append((name, t, fields)))
    pipeline = _breaching_pipeline(bus)
    for _ in range(20):
        pipeline.record_request("t0", 5_000, 50_000)
    pipeline.record_request("t0", 50, 250_000)
    pipeline.finalize(300_000)
    names = [name for name, _, _ in fired]
    assert names == ["slo.breach", "slo.recover"]
    name, time_us, fields = fired[0]
    assert time_us == 100_000
    assert fields["tenant"] == "t0"
    assert fields["burn_short"] >= 2.0
    assert "kind" not in fields and "time_us" not in fields
    assert all(is_derived(name) for name in names)


def test_emit_events_off_keeps_bus_quiet():
    bus = TracepointBus()
    fired = []
    bus.subscribe("slo.breach",
                  lambda name, t, fields: fired.append(name))
    pipeline = _breaching_pipeline(bus)
    pipeline.emit_events = False
    for _ in range(20):
        pipeline.record_request("t0", 5_000, 50_000)
    pipeline.finalize(100_000)
    assert [e["kind"] for e in pipeline.slo_events] == ["breach"]
    assert fired == []


# -- budgeted serialization ------------------------------------------------

def test_coalesce_rows_sums_counts_and_maxes_percentiles():
    rows = [[i, 10, 1, 100, 200, 300, 1, 50, 5, 2, 0]
            for i in range(8)]
    rows[5][4] = 9_999
    merged = coalesce_rows(rows, 4)
    assert len(merged) == 4
    assert [row[0] for row in merged] == [0, 2, 4, 6]
    assert all(row[1] == 20 for row in merged)     # requests summed
    assert merged[2][4] == 9_999                   # p95 maxed
    assert coalesce_rows(rows, 100) == rows        # no-op when small


def test_json_document_shape_and_totals():
    pipeline = _breaching_pipeline()
    for _ in range(20):
        pipeline.record_request("t0", 5_000, 50_000)
    pipeline.finalize(100_000)
    doc = pipeline.to_json_dict()
    assert doc["schema"] == TELEMETRY_SCHEMA
    assert doc["windows"]["columns"] == list(SERIES_COLUMNS)
    assert doc["totals"] == {"requests": 20, "bad": 20,
                             "breaches": 1, "recovers": 0}
    assert doc["slo"]["objectives"]["t0"]["latency_us"] == 100
    assert doc["slo"]["policy"]["short_windows"] == 1
    assert doc["dropped"]["rows_kept"] == len(doc["windows"]["rows"])


def test_budget_folds_low_traffic_tenants_into_other():
    pipeline = TelemetryPipeline()
    for tenant in range(20):
        for _ in range(tenant + 1):
            pipeline.record_request("t%d" % tenant, 500, 50_000)
    pipeline.finalize(100_000)
    doc = pipeline.to_json_dict(max_tenants=4)
    detailed = [key for key in doc["tenants"] if key != "_other"]
    assert len(detailed) == 4
    # Highest-traffic tenants are the ones kept in detail.
    assert set(detailed) == {"t19", "t18", "t17", "t16"}
    other = doc["tenants"]["_other"]
    assert other["folded"] == 16
    assert other["requests"] == sum(range(1, 17))
    assert doc["dropped"]["tenants_detailed"] == 4


def test_budget_squeeze_is_deterministic_and_fits():
    def build():
        pipeline = TelemetryPipeline(window_us=10_000)
        for window in range(200):
            for tenant in range(16):
                pipeline.record_request("t%d" % tenant, 100 + window,
                                        window * 10_000 + 5_000)
        pipeline.finalize(2_000_000)
        return pipeline

    budget = 4 * 1024
    first = build().to_json_dict(budget_bytes=budget)
    second = build().to_json_dict(budget_bytes=budget)
    blob = json.dumps(first, separators=(",", ":"), sort_keys=True)
    assert blob == json.dumps(second, separators=(",", ":"),
                              sort_keys=True)
    assert len(blob) <= budget
    assert first["dropped"]["rows_kept"] < first["dropped"]["rows_recorded"]


def test_scale_telemetry_fits_per_point_budget():
    """Satellite: a 10-tenant scale point's telemetry stays in budget."""
    from repro.scale.sweep import (
        TELEMETRY_BUDGET_BYTES,
        collect_scale_telemetry,
    )

    doc = collect_scale_telemetry(200, seed=1, event_budget=60_000)
    size = len(json.dumps(doc, separators=(",", ":")))
    assert size <= TELEMETRY_BUDGET_BYTES
    assert doc["totals"]["requests"] > 100
    assert len(doc["windows"]["rows"]) >= 2
    # All ten tenants accounted for, detailed or folded.
    folded = doc["tenants"].get("_other", {}).get("folded", 0)
    detailed = len(doc["tenants"]) - (1 if folded else 0)
    assert detailed + folded == 10


# -- dashboards ------------------------------------------------------------

def _snapshot():
    pipeline = _breaching_pipeline()
    for _ in range(20):
        pipeline.record_request("t0", 5_000, 50_000)
    pipeline.record_request("t1", 50, 150_000)
    pipeline.finalize(200_000)
    return pipeline.snapshot()


def test_render_frame_shows_tenants_and_breaches():
    frame = render_frame(_snapshot())
    assert "t0" in frame and "t1" in frame
    assert "BREACH" in frame.upper()
    assert "p95" in frame


def test_render_html_is_self_contained(tmp_path):
    snapshot = _snapshot()
    html = render_html(snapshot, title="unit <test>")
    assert html.startswith("<!DOCTYPE html>")
    assert "unit &lt;test&gt;" in html        # escaped title
    assert "<svg" in html and "<style>" in html
    assert "http://" not in html and "https://" not in html
    path = str(tmp_path / "dash.html")
    write_html(snapshot, path, title="t")
    assert os.path.getsize(path) > 1_000


# -- watch CLI -------------------------------------------------------------

def test_watch_case_once_smoke(tmp_path, capsys):
    from repro.cli import main

    html = str(tmp_path / "watch.html")
    assert main(["watch", "c5", "--once", "--duration", "2",
                 "--html", html]) == 0
    out = capsys.readouterr().out
    assert "final: t=2.00s" in out
    assert os.path.exists(html)


def test_watch_scale_once_smoke(capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.setenv("REPRO_SMOKE", "1")
    assert main(["watch", "scale", "--once", "--threads", "100"]) == 0
    out = capsys.readouterr().out
    assert "final:" in out
    assert "slo event" in out


def test_watch_degrades_gracefully_with_zero_requests(capsys):
    """A run shorter than the warmup records zero requests; the watch
    dashboard must still render its (empty-series) final frame instead
    of crashing on the harness's no-victim-samples error."""
    from repro.cli import main

    assert main(["watch", "c5", "--once", "--duration", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "warning:" in out and "no victim samples" in out
    assert "final: t=0.50s" in out
    assert "in breach: none" in out


# -- golden purity ---------------------------------------------------------

def _assert_golden_unchanged_with_telemetry(case_id):
    from repro.obs.golden import first_divergence, run_golden_case

    golden = _load_golden(case_id)
    pipeline = _breaching_pipeline()

    def observer(env):
        env.telemetry = pipeline
        pipeline.attach(env.kernel.trace, manager=env.runtime.manager)

    actual = run_golden_case(case_id, golden["duration_s"],
                             golden["seed"], observer=observer)
    assert first_divergence(golden, actual) is None, (
        "telemetry attachment changed the canonical stream of %s"
        % case_id)


def test_telemetry_is_pure_subscriber_on_golden_case():
    """Attached telemetry (with slo.* firing) must not move one event."""
    _assert_golden_unchanged_with_telemetry("c1")


@pytest.mark.slow
@pytest.mark.parametrize("case_id", ["c%d" % n for n in range(1, 18)])
def test_telemetry_is_pure_subscriber_everywhere(case_id):
    _assert_golden_unchanged_with_telemetry(case_id)
