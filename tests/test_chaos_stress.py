"""Chaos stress sweep: the whole registry under the default cocktail.

Every registry case runs under each default fault kind for several
chaos seeds — through the hardened parallel runner — and must finish
with **zero invariant violations**: every injected stall, lost wakeup,
and crash is absorbed by the kernel's containment, the watchdog's
repair, and the manager's healing.  A sampled subset is then replayed
serially and must be byte-identical, which is the determinism claim
(`SHA-256 plans + virtual-time scheduling`) checked at sweep scale.

This is the slowest tier-1 file (a ~100-run sweep), so it is marked
``slow``; keep the duration at the minimum that clears the cases' 1 s
warmup, and keep the fast-loop suite (``pytest -m "not slow"``) free
of it.
"""

import json

import pytest

from repro.cases import ALL_CASES
from repro.faults import DEFAULT_CHAOS_FAULTS, chaos_spec
from repro.runner import execute_spec, run_jobs

pytestmark = pytest.mark.slow

#: Long enough to clear the 1 s warmup and leave a fault window.
DURATION_S = 1.5

SEEDS = (1,)


def _all_specs():
    ordered = sorted(ALL_CASES, key=lambda cid: int(cid[1:]))
    return [
        chaos_spec(case_id, kind, seed, DURATION_S)
        for case_id in ordered
        for kind in DEFAULT_CHAOS_FAULTS
        for seed in SEEDS
    ]


def test_sweep_covers_new_tenant_families():
    """The chaos sweep inherits the FaaS and scaled-cache cases.

    The sweep iterates the registry, so new cases are covered by
    construction — but silently losing one (a registry refactor, a
    filtered id list) would shrink coverage without failing anything.
    Pin the families the fault cocktail must keep exercising: sandbox
    churn under both scheduler policies, and the wide cache tier.
    """
    labels = [spec.label() for spec in _all_specs()]
    for case_id in ("c18", "c19", "c20"):
        for kind in DEFAULT_CHAOS_FAULTS:
            assert any(case_id in label and kind in label
                       for label in labels), (case_id, kind)


def test_registry_survives_default_fault_cocktail():
    specs = _all_specs()
    fingerprint = "f" * 64
    stats = {}
    results = run_jobs(specs, jobs=4, use_cache=False,
                       fingerprint=fingerprint, stats=stats)
    assert len(results) == len(specs)

    violations = []
    fired = 0
    for spec in specs:
        result = results[spec.key(fingerprint)]
        chaos = result["chaos"]
        fired += len(chaos["fired"])
        for violation in chaos["violations"]:
            violations.append((spec.label(), violation))
        # A run that died is a containment failure even if the suite
        # somehow stayed silent.
        assert result.get("error") is None, (spec.label(), result["error"])
    assert violations == [], violations
    # The sweep actually injected faults (plans can skip, not no-op).
    assert fired >= len(specs)
    # And the runner itself never had to heal: these are simulated
    # faults inside the jobs, not worker failures.
    assert stats["worker_errors"] == 0

    # Replay a sample serially: byte-identical results, any worker
    # count (the parallel/serial equivalence contract under chaos).
    sample = specs[:: max(1, len(specs) // 6)]
    for spec in sample:
        replay = execute_spec(spec.to_dict())
        parallel = results[spec.key(fingerprint)]
        assert json.dumps(replay, sort_keys=True) == json.dumps(
            parallel, sort_keys=True), spec.label()
