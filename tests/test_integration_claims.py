"""Fast integration checks of the paper's headline claims.

The full-strength versions live in benchmarks/ (they regenerate every
table and figure); these shortened runs guard the claims in the plain
test suite so a regression is caught by ``pytest tests/`` alone.
"""

import pytest

from repro.cases import Solution

DURATION_S = 3


@pytest.fixture(scope="module")
def representative_evaluations(evaluation_cache):
    """One case per application, evaluated under pBox + two baselines."""
    solutions = [Solution.PBOX, Solution.CGROUP, Solution.PARTIES]
    return {
        case_id: evaluation_cache.evaluate(case_id, solutions=solutions,
                                           duration_s=DURATION_S)
        for case_id in ("c1", "c8", "c12", "c14")
    }


def test_pbox_mitigates_every_representative_case(representative_evaluations):
    for case_id, evaluation in representative_evaluations.items():
        assert evaluation.interference_level > 2, case_id
        assert evaluation.reduction_ratio(Solution.PBOX) > 0.5, case_id


def test_pbox_beats_baselines_everywhere(representative_evaluations):
    for case_id, evaluation in representative_evaluations.items():
        pbox_r = evaluation.reduction_ratio(Solution.PBOX)
        for solution in (Solution.CGROUP, Solution.PARTIES):
            assert pbox_r > evaluation.reduction_ratio(solution), (
                case_id, solution)


def test_baselines_never_strongly_mitigate(representative_evaluations):
    """Hardware-resource control cannot fix virtual-resource waits."""
    for case_id, evaluation in representative_evaluations.items():
        for solution in (Solution.CGROUP, Solution.PARTIES):
            assert evaluation.reduction_ratio(solution) < 0.5, (
                case_id, solution)


def test_memcached_case_stays_unmitigated(evaluation_cache):
    """c16 is the paper's one failure: overhead exceeds benefit."""
    evaluation = evaluation_cache.evaluate(
        "c16", solutions=[Solution.PBOX], duration_s=DURATION_S)
    assert evaluation.reduction_ratio(Solution.PBOX) < 0.3


def test_goal_attainment_improves_with_pbox(evaluation_cache):
    """Section 6.2: far more activities meet the goal with pBox on.

    Measured over the victim's per-activity latencies in c1: the goal
    is met when a request is no more than 50% slower than To.
    """
    evaluation = evaluation_cache.evaluate(
        "c1", solutions=[Solution.PBOX], duration_s=DURATION_S)
    threshold = evaluation.to_us * 1.5

    def goal_met_fraction(run):
        samples = []
        for recorder in run.env.victim_recorders:
            samples.extend(recorder.samples_us)
        met = sum(1 for s in samples if s <= threshold)
        return met / len(samples)

    without = goal_met_fraction(evaluation.interference)
    with_pbox = goal_met_fraction(evaluation.solution_runs[Solution.PBOX])
    assert with_pbox > without + 0.2
    assert with_pbox > 0.75  # paper: 94.6% with, 48.2% without
