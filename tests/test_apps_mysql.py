"""Unit tests for the MySQL application model."""

import pytest

from repro.apps.base import Instrumentation
from repro.apps.mysqlsim import MySQLConfig, MySQLServer
from repro.apps.mysqlsim.resources import BufferPool, UndoLog
from repro.core import OperationCosts, PBoxManager, PBoxRuntime
from repro.sim import Kernel, Now, Sleep
from repro.sim.clock import seconds
from repro.workloads import LatencyRecorder, closed_loop_client


def make_server(pbox=False, **config):
    kernel = Kernel(cores=4)
    manager = PBoxManager(kernel, enabled=pbox)
    runtime = PBoxRuntime(manager, costs=OperationCosts.zero(), enabled=pbox)
    server = MySQLServer(kernel, runtime, MySQLConfig(**config))
    return kernel, server


def run_requests(kernel, server, requests, name="client", start_us=0):
    """Drive one connection through ``requests``; returns latencies."""
    recorder = LatencyRecorder(name)
    conn = server.connect(name)
    sequence = iter(requests)

    def body():
        if start_us:
            yield Sleep(us=start_us)
        yield from conn.open()
        for request in sequence:
            began = yield Now()
            yield from conn.execute(request)
            ended = yield Now()
            recorder.record(ended - began, ended)
        yield from conn.close()

    kernel.spawn(body, name=name)
    return recorder


def test_buffer_pool_hit_is_fast_miss_pays_io():
    kernel, server = make_server(buffer_pool_blocks=8)
    recorder = run_requests(
        kernel, server,
        [{"kind": "oltp_read", "pages": [("t", 1)], "work_us": 0},
         {"kind": "oltp_read", "pages": [("t", 1)], "work_us": 0}],
    )
    kernel.run(until_us=seconds(1))
    miss, hit = recorder.samples_us
    assert miss >= server.buffer_pool.read_io_us
    assert hit < miss
    assert server.buffer_pool.hits == 1
    assert server.buffer_pool.misses == 1


def test_buffer_pool_evicts_lru_when_full():
    kernel, server = make_server(buffer_pool_blocks=2)
    requests = [
        {"kind": "oltp_read", "pages": [("t", i)], "work_us": 0}
        for i in (1, 2, 3, 1)
    ]
    recorder = run_requests(kernel, server, requests)
    kernel.run(until_us=seconds(1))
    # Page 1 was evicted by page 3, so the final access misses again.
    assert server.buffer_pool.misses == 4
    assert server.buffer_pool.resident == 2


def test_undo_log_heavy_entries_require_pin():
    kernel, server = make_server()
    undo = server.undo_log

    def body():
        yield from undo.append()
        assert undo.light_backlog == 1
        undo.pin()
        yield from undo.append()
        assert undo.pending_heavy == 1
        undo.unpin()
        assert undo.heavy_backlog == 1

    kernel.spawn(body)
    kernel.run(until_us=seconds(1))


def test_undo_unpin_without_pin_raises():
    kernel, server = make_server()
    with pytest.raises(RuntimeError):
        server.undo_log.unpin()


def test_purge_thread_drains_backlog():
    kernel, server = make_server()

    def writer():
        server.undo_log.pin()
        for _ in range(50):
            yield from server.undo_log.append()
        server.undo_log.unpin()

    kernel.spawn(writer)
    kernel.spawn(server.purge_thread_body, name="purge")
    kernel.run(until_us=seconds(3))
    assert server.undo_log.heavy_backlog == 0
    assert server.undo_log.purged_total >= 50


def test_tickets_limit_concurrency():
    kernel, server = make_server(thread_concurrency=2, ticket_grant=1)
    inside = {"now": 0, "max": 0}

    def client(name):
        conn = server.connect(name)

        def body():
            yield from conn.open()
            for _ in range(3):
                yield from server.tickets.enter(conn)
                inside["now"] += 1
                inside["max"] = max(inside["max"], inside["now"])
                yield Sleep(us=1_000)
                inside["now"] -= 1
                server.tickets.exit(conn)
            yield from conn.close()

        return body

    for index in range(4):
        kernel.spawn(client("c%d" % index), name="c%d" % index)
    kernel.run(until_us=seconds(2))
    assert inside["max"] == 2


def test_ticket_grant_skips_admission():
    kernel, server = make_server(thread_concurrency=1, ticket_grant=3)
    conn = server.connect("c")

    def body():
        yield from conn.open()
        yield from server.tickets.enter(conn)   # admission, 2 tickets left
        server.tickets.exit(conn)               # keeps the slot
        assert server.tickets.n_active == 1
        yield from server.tickets.enter(conn)   # ticket fast path
        server.tickets.exit(conn)
        yield from server.tickets.enter(conn)   # last ticket
        server.tickets.exit(conn)               # tickets exhausted: release
        assert server.tickets.n_active == 0
        yield from conn.close()

    kernel.spawn(body)
    kernel.run(until_us=seconds(1))


def test_select_for_update_blocks_insert():
    kernel, server = make_server()
    inserter = run_requests(
        kernel, server,
        [{"kind": "insert", "table": "t", "work_us": 100}],
        name="inserter",
        start_us=1_000,  # arrive while the scan holds the lock
    )

    def holder():
        conn = server.connect("holder")
        yield from conn.open()
        yield from conn.execute(
            {"kind": "select_for_update", "table": "t", "scan_us": 20_000}
        )
        yield from conn.close()

    kernel.spawn(holder, name="holder")
    kernel.run(until_us=seconds(1))
    # The insert waited out most of the 20 ms scan.
    assert inserter.samples_us[0] >= 15_000


def test_serializable_scan_blocks_update():
    kernel, server = make_server()
    updater = run_requests(
        kernel, server,
        [{"kind": "update_row", "work_us": 100, "post_work_us": 0}],
        name="updater",
        start_us=1_000,  # arrive while the scan holds the record locks
    )

    def scanner():
        conn = server.connect("scanner")
        yield from conn.open()
        yield from conn.execute(
            {"kind": "serializable_scan", "scan_us": 10_000}
        )
        yield from conn.close()

    kernel.spawn(scanner, name="scanner")
    kernel.run(until_us=seconds(1))
    assert updater.samples_us[0] >= 8_000


def test_long_txn_read_pins_and_unpins():
    kernel, server = make_server()
    recorder = run_requests(
        kernel, server,
        [{"kind": "long_txn_read", "hold_open_us": 5_000, "work_us": 100}],
    )
    kernel.run(until_us=seconds(1))
    assert server.undo_log.pins == 0
    assert recorder.samples_us[0] >= 5_000


def test_connection_close_releases_pin():
    kernel, server = make_server()
    conn = server.connect("c")

    def body():
        yield from conn.open()
        server.undo_log.pin()
        conn.txn_pinned = True
        yield from conn.close()

    kernel.spawn(body)
    kernel.run(until_us=seconds(1))
    assert server.undo_log.pins == 0


def test_unknown_request_kind_raises():
    from repro.sim.errors import ThreadCrashedError

    kernel, server = make_server()
    run_requests(kernel, server, [{"kind": "nonsense"}])
    with pytest.raises(ThreadCrashedError):
        kernel.run(until_us=seconds(1))


def test_dump_task_floods_buffer_pool():
    kernel, server = make_server(buffer_pool_blocks=16)

    def warm():
        conn = server.connect("warm")
        yield from conn.open()
        yield from conn.execute(
            {"kind": "oltp_read",
             "pages": [("small", i) for i in range(8)], "work_us": 0}
        )
        yield from conn.close()

    kernel.spawn(warm, name="warm")
    kernel.spawn(server.dump_task_body(pages=64, start_us=50_000),
                 name="dump")
    kernel.run(until_us=seconds(2))
    # The dump streamed the big table through the pool, evicting the
    # small table's pages.
    resident_small = [p for p in server.buffer_pool.pages if p[0] == "small"]
    assert len(resident_small) < 8
