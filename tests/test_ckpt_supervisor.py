"""Supervised resume: crashed chaos workers converge byte-identically.

The crash-fault leg of the checkpoint story: a supervised chaos job is
killed mid-run, resumed from the last good checkpoint, and its final
CHAOS.json entry digest must equal the digest of an unsupervised worker
that never crashed -- byte for byte, through
:func:`repro.faults.chaos.entry_digest`.
"""

import functools

import pytest

from repro.ckpt import CheckpointStore, RunSupervisor
from repro.ckpt.supervisor import SupervisorGaveUp
from repro.faults.chaos import _entry, entry_digest
from repro.runner.runner import execute_spec

CASE_ID = "c2"
DURATION_S = 1.5
FAULTS = "crash"


@functools.lru_cache(maxsize=1)
def _plain_digest():
    result = execute_spec({
        "case_id": CASE_ID,
        "solution": "pbox",
        "seed": 1,
        "duration_s": DURATION_S,
        "faults": FAULTS,
    })
    assert result.get("error") is None, result.get("error")
    return entry_digest(_entry(result))


def test_crash_resume_chaos_digest_is_byte_identical(tmp_path):
    supervisor = RunSupervisor(CheckpointStore(str(tmp_path / "store")))
    outcome = supervisor.run(CASE_ID, duration_s=DURATION_S, seed=1,
                             kill_at_us=900_000, faults=FAULTS)
    assert outcome["resumes"] == 1
    assert outcome["violations"] == []
    supervised = entry_digest(_entry(supervisor.chaos_result(outcome)))
    assert supervised == _plain_digest()


def test_clean_supervised_run_needs_no_resume(tmp_path):
    supervisor = RunSupervisor(CheckpointStore(str(tmp_path / "store")))
    outcome = supervisor.run(CASE_ID, duration_s=DURATION_S, seed=1,
                             faults=FAULTS)
    assert outcome["resumes"] == 0
    supervised = entry_digest(_entry(supervisor.chaos_result(outcome)))
    assert supervised == _plain_digest()


def test_crash_before_first_barrier_reruns_cleanly(tmp_path):
    # kill_at_us=1 fires at the very first barrier, before any
    # checkpoint exists: the resume path degrades to a clean full run.
    supervisor = RunSupervisor(CheckpointStore(str(tmp_path / "store")))
    outcome = supervisor.run(CASE_ID, duration_s=DURATION_S, seed=1,
                             kill_at_us=1, faults=FAULTS)
    assert outcome["resumes"] == 1
    supervised = entry_digest(_entry(supervisor.chaos_result(outcome)))
    assert supervised == _plain_digest()


def test_supervisor_gives_up_when_resume_budget_exhausted(tmp_path):
    supervisor = RunSupervisor(CheckpointStore(str(tmp_path / "store")),
                               max_resumes=0)
    with pytest.raises(SupervisorGaveUp) as excinfo:
        supervisor.run(CASE_ID, duration_s=DURATION_S, seed=1,
                       kill_at_us=900_000)
    assert excinfo.value.case_id == CASE_ID
    assert excinfo.value.resumes == 0
