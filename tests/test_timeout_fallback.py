"""Job-alarm regression: the non-main-thread deadline fallback.

``signal.signal`` raises ``ValueError`` off the main thread, so a job
driven from a worker thread (an embedding harness, the checkpoint
supervisor) cannot arm SIGALRM.  The alarm must degrade to a post-hoc
deadline check -- warning that preemption is lost, but still raising
:class:`~repro.runner.runner.JobTimeout` when the budget is blown --
instead of crashing or silently dropping the budget.
"""

import threading
import time
import warnings

import pytest

from repro.runner.runner import JobTimeout, _job_alarm


def _run_in_thread(fn):
    """Run ``fn`` on a worker thread; returns (result, exception)."""
    box = {}

    def _target():
        try:
            box["result"] = fn()
        except BaseException as exc:
            box["error"] = exc

    thread = threading.Thread(target=_target)
    thread.start()
    thread.join(timeout=30)
    assert not thread.is_alive()
    return box.get("result"), box.get("error")


def test_worker_thread_overrun_raises_on_exit():
    def job():
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with _job_alarm(0.05):
                time.sleep(0.15)
        return caught

    _, error = _run_in_thread(job)
    assert isinstance(error, JobTimeout)
    assert "deadline fallback" in str(error)


def test_worker_thread_warns_about_degraded_budget():
    def job():
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with _job_alarm(5.0):
                pass
        return [str(w.message) for w in caught
                if issubclass(w.category, RuntimeWarning)]

    messages, error = _run_in_thread(job)
    assert error is None
    assert any("SIGALRM is unavailable" in message for message in messages)


def test_worker_thread_under_budget_is_clean():
    def job():
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            with _job_alarm(5.0):
                return "done"

    result, error = _run_in_thread(job)
    assert error is None
    assert result == "done"


def test_worker_thread_job_exception_wins_over_deadline():
    # A job that fails *and* overruns reports its own failure; the
    # deadline check must not mask it.
    def job():
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            with _job_alarm(0.05):
                time.sleep(0.15)
                raise RuntimeError("the real failure")

    _, error = _run_in_thread(job)
    assert isinstance(error, RuntimeError)
    assert not isinstance(error, JobTimeout)
    assert "the real failure" in str(error)


def test_no_budget_is_a_noop_anywhere():
    def job():
        with _job_alarm(None):
            return "ok"

    result, error = _run_in_thread(job)
    assert error is None
    assert result == "ok"
    with _job_alarm(None):
        pass


def test_main_thread_alarm_still_preempts():
    with pytest.raises(JobTimeout):
        with _job_alarm(0.05):
            time.sleep(5)
