"""Unit tests for the Apache, Varnish, and Memcached models."""

import pytest

from repro.apps.apachesim import ApacheConfig, ApacheServer
from repro.apps.memcachedsim import MemcachedConfig, MemcachedServer
from repro.apps.varnishsim import VarnishConfig, VarnishServer
from repro.core import OperationCosts, PBoxManager, PBoxRuntime
from repro.sim import Kernel, Now, Sleep
from repro.sim.clock import seconds
from repro.workloads import LatencyRecorder


def make_env(pbox=False, cores=4):
    kernel = Kernel(cores=cores)
    manager = PBoxManager(kernel, enabled=pbox)
    runtime = PBoxRuntime(manager, costs=OperationCosts.zero(), enabled=pbox)
    return kernel, manager, runtime


def run_requests(kernel, server, requests, name="client", start_us=0):
    recorder = LatencyRecorder(name)
    conn = server.connect(name)

    def body():
        if start_us:
            yield Sleep(us=start_us)
        yield from conn.open()
        for request in requests:
            began = yield Now()
            yield from conn.execute(request)
            ended = yield Now()
            recorder.record(ended - began, ended)
        yield from conn.close()

    kernel.spawn(body, name=name)
    return recorder


# ---------------------------------------------------------------------------
# Apache
# ---------------------------------------------------------------------------

def test_apache_static_request_uses_worker_pool():
    kernel, _manager, runtime = make_env()
    server = ApacheServer(kernel, runtime, ApacheConfig(max_workers=2))
    recorder = run_requests(
        kernel, server, [{"kind": "static", "serve_us": 500}])
    kernel.run(until_us=seconds(1))
    assert recorder.samples_us[0] >= 500
    assert server.worker_pool.available == 2


def test_apache_worker_pool_exhaustion_blocks_static():
    kernel, _manager, runtime = make_env()
    server = ApacheServer(kernel, runtime, ApacheConfig(max_workers=2))
    for index in range(2):
        run_requests(kernel, server,
                     [{"kind": "slow_download", "serve_us": 20_000}],
                     name="slow-%d" % index)
    victim = run_requests(kernel, server,
                          [{"kind": "static", "serve_us": 100}],
                          name="victim", start_us=1_000)
    kernel.run(until_us=seconds(1))
    assert victim.samples_us[0] >= 15_000


def test_apache_fcgid_slots_limit_concurrency():
    kernel, _manager, runtime = make_env()
    server = ApacheServer(kernel, runtime,
                          ApacheConfig(max_workers=8, fcgid_slots=1))
    first = run_requests(kernel, server,
                         [{"kind": "fcgid", "script_us": 10_000}],
                         name="first")
    second = run_requests(kernel, server,
                          [{"kind": "fcgid", "script_us": 1_000}],
                          name="second", start_us=500)
    kernel.run(until_us=seconds(1))
    assert second.samples_us[0] >= 9_000  # waited for the only slot


def test_apache_fpm_children_pool_is_separate():
    kernel, _manager, runtime = make_env()
    server = ApacheServer(kernel, runtime,
                          ApacheConfig(fcgid_slots=1, fpm_children=1))
    fcgid = run_requests(kernel, server,
                         [{"kind": "fcgid", "script_us": 10_000}],
                         name="fcgid")
    fpm = run_requests(kernel, server,
                       [{"kind": "php_fpm", "script_us": 1_000}],
                       name="fpm", start_us=500)
    kernel.run(until_us=seconds(1))
    # Different pools: the fpm request does not wait for the fcgid slot.
    assert fpm.samples_us[0] < 5_000


# ---------------------------------------------------------------------------
# Varnish (event-driven)
# ---------------------------------------------------------------------------

def test_varnish_small_object_served_by_pool():
    kernel, _manager, runtime = make_env()
    server = VarnishServer(kernel, runtime, VarnishConfig(workers=2))
    server.start()
    recorder = run_requests(kernel, server, [{"kind": "small_object"}])
    kernel.run(until_us=seconds(1))
    assert recorder.count == 1
    assert recorder.samples_us[0] >= server.config.small_us
    assert server.pool.tasks_processed == 1


def test_varnish_big_objects_starve_queue():
    kernel, _manager, runtime = make_env()
    server = VarnishServer(kernel, runtime, VarnishConfig(workers=2))
    server.start()
    for index in range(2):
        run_requests(kernel, server,
                     [{"kind": "big_object", "backend_us": 50_000}],
                     name="big-%d" % index)
    victim = run_requests(kernel, server, [{"kind": "small_object"}],
                          name="victim", start_us=1_000)
    kernel.run(until_us=seconds(1))
    assert victim.samples_us[0] >= 40_000


def test_varnish_pbox_created_and_parked():
    kernel, manager, runtime = make_env(pbox=True)
    server = VarnishServer(kernel, runtime, VarnishConfig(workers=1))
    server.start()
    recorder = run_requests(kernel, server, [{"kind": "small_object"}])
    kernel.run(until_us=seconds(1))
    assert recorder.count == 1
    # The connection pBox was created, used for one activity, released.
    assert manager.stats["events"] > 0


def test_varnish_shared_thread_penalty_defers_tasks():
    kernel, manager, runtime = make_env(pbox=True)
    server = VarnishServer(kernel, runtime, VarnishConfig(workers=1))
    server.start()
    conn = server.connect("noisy")
    done = {}

    def noisy_body():
        yield from conn.open()
        pbox = manager.get(conn.psid)
        pbox.penalty_until_us = 20_000  # simulate an active penalty
        began = yield Now()
        yield from conn.execute({"kind": "small_object"})
        done["latency"] = (yield Now()) - began
        yield from conn.close()

    kernel.spawn(noisy_body, name="noisy")
    kernel.run(until_us=seconds(1))
    # The task sat in the queue until the penalty window passed.
    assert done["latency"] >= 19_000


def test_varnish_sumstat_lock_contention():
    kernel, _manager, runtime = make_env()
    server = VarnishServer(kernel, runtime,
                           VarnishConfig(workers=4, sumstat_hold_us=2_000))
    server.start()
    recorders = [
        run_requests(kernel, server, [{"kind": "small_object"}] * 3,
                     name="c%d" % index)
        for index in range(3)
    ]
    kernel.run(until_us=seconds(1))
    # With a 2 ms SumStat hold and 3 concurrent clients, some request
    # waited on the lock beyond its service time.
    slowest = max(max(r.samples_us) for r in recorders)
    assert slowest >= server.config.small_us + 2_000


def test_varnish_unknown_kind_raises():
    from repro.sim.errors import ThreadCrashedError

    kernel, _manager, runtime = make_env()
    server = VarnishServer(kernel, runtime, VarnishConfig(workers=1))
    server.start()
    run_requests(kernel, server, [{"kind": "mystery"}])
    with pytest.raises(ThreadCrashedError):
        kernel.run(until_us=seconds(1))


# ---------------------------------------------------------------------------
# Memcached (event-driven)
# ---------------------------------------------------------------------------

def test_memcached_get_and_set():
    kernel, _manager, runtime = make_env()
    server = MemcachedServer(kernel, runtime, MemcachedConfig(workers=2))
    server.start()
    recorder = run_requests(kernel, server,
                            [{"kind": "get"}, {"kind": "set"}])
    kernel.run(until_us=seconds(1))
    assert recorder.count == 2
    get_us, set_us = recorder.samples_us
    assert get_us >= server.config.get_us
    assert set_us >= server.config.set_us


def test_memcached_eviction_holds_lock_longer():
    kernel, _manager, runtime = make_env()
    config = MemcachedConfig(workers=1, evict_probability=1.0)
    server = MemcachedServer(kernel, runtime, config)
    server.start()
    setter = run_requests(kernel, server, [{"kind": "set"}], name="setter")
    getter = run_requests(kernel, server, [{"kind": "get"}],
                          name="getter", start_us=10)
    kernel.run(until_us=seconds(1))
    # The get queued behind a set that held the lock for an eviction.
    assert getter.samples_us[0] >= config.lock_evict_us


def test_memcached_deterministic_across_runs():
    def one_run():
        kernel, _manager, runtime = make_env()
        server = MemcachedServer(kernel, runtime, MemcachedConfig(workers=2))
        server.start()
        recorder = run_requests(
            kernel, server, [{"kind": "set"} for _ in range(20)])
        kernel.run(until_us=seconds(1))
        return recorder.samples_us

    assert one_run() == one_run()
