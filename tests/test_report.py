"""Tests for the results report generator."""

import os

from repro.report import SECTIONS, generate_report, load_section, write_report


def test_report_handles_missing_results(tmp_path):
    # +6: the metrics-registry, attribution, sweep, chaos, scale, and
    # why snapshot sections are tracked alongside the SECTIONS files.
    total = len(SECTIONS) + 6
    report = generate_report(str(tmp_path))
    assert "not yet generated" in report
    assert "%d of %d sections missing" % (total, total) in report


def test_report_renders_tables(tmp_path):
    (tmp_path / "tab05_analyzer.txt").write_text(
        "# Table 5 commentary\n"
        "app\tmanual\tdetected\n"
        "mysql\t57\t40\n"
    )
    report = generate_report(str(tmp_path))
    assert "| app | manual | detected |" in report
    assert "| mysql | 57 | 40 |" in report
    assert "Table 5 commentary" in report


def test_report_renders_attribution_snapshot(tmp_path):
    import json

    (tmp_path / "BENCH_attribution.json").write_text(json.dumps({
        "overhead": {"attached_ratio": 0.021, "detached_ratio": 0.002},
        "cases": {
            "c17": {"victim_p95_us": 5_200, "top_share": 0.97,
                    "top_aggressor": "analytics (pbox 2)", "actions": 120,
                    "penalty_us": 1_500_000, "recovered_est_us": 80_000},
            "c2": {"victim_p95_us": 6_000, "top_share": 0.88,
                   "top_aggressor": "nopk-inserter (pbox 2)", "actions": 40,
                   "penalty_us": 200_000, "recovered_est_us": None},
        },
    }))
    report = generate_report(str(tmp_path))
    assert "contention attribution" in report
    assert "analytics (pbox 2)" in report
    assert "97%" in report
    assert "2.1% attached" in report
    assert "n/a" in report  # c2 has no recovered estimate


def test_report_skips_corrupt_json_artifact(tmp_path):
    # Truncated JSON (a killed benchmark mid-write) degrades to the
    # one-line skip note instead of crashing the whole report.
    (tmp_path / "SCALE.json").write_text('{"schema": 2, "points": [{"thr')
    report = generate_report(str(tmp_path))
    assert "section skipped" in report
    assert "`results/SCALE.json`" in report
    assert "JSONDecodeError" in report


def test_report_skips_older_schema_artifact(tmp_path):
    import json

    # A pre-schema artifact with the wrong value shapes (points as
    # dicts of strings) raises inside the renderer; the report keeps
    # going and still renders neighbouring sections.
    (tmp_path / "SWEEP.json").write_text(json.dumps({
        "solutions": ["pbox"],
        "cases": {"c1": {"seeds": {"1": {"to_us": "old-schema"}}}},
    }))
    (tmp_path / "fig16_overhead.txt").write_text("a\tb\n1\t2\n")
    report = generate_report(str(tmp_path))
    assert "section skipped" in report
    assert "`results/SWEEP.json`" in report
    assert "| a | b |" in report     # neighbours unaffected


def test_report_counts_skipped_sections_as_present(tmp_path):
    # A skipped (corrupt) section is not "missing": the file exists and
    # the note tells the reader how to regenerate it.
    (tmp_path / "CHAOS.json").write_text("not json at all")
    report = generate_report(str(tmp_path))
    total = len(SECTIONS) + 6
    assert "%d of %d sections missing" % (total - 1, total) in report


def test_scale_section_renders_telemetry_table(tmp_path):
    import json

    (tmp_path / "SCALE.json").write_text(json.dumps({
        "schema": 2, "telemetry": True,
        "points": [{
            "threads": 200, "tenants": 10, "pboxes": 20, "cores": 25,
            "duration_virtual_ms": 100.0, "events_per_sec": 1000,
            "requests": 2290, "manager": {"cost_per_event_us": 0.1,
                                          "overhead_frac": 0.02},
            "telemetry": {
                "totals": {"requests": 2290, "bad": 579,
                           "breaches": 7, "recovers": 2},
                "dropped": {"tenants_recorded": 10},
                "windows": {"rows": [[0, 100, 10, 1, 2, 3, 0, 0, 5,
                                      14, 4]]},
            },
        }],
    }))
    report = generate_report(str(tmp_path))
    assert "Per-tenant SLO telemetry" in report
    assert "| 200 | 2,290 | 579 | 7 | 2 | 14 | 10 |" in report


def test_write_report_creates_file(tmp_path):
    (tmp_path / "fig16_overhead.txt").write_text("a\tb\n1\t2\n")
    path = write_report(str(tmp_path))
    assert os.path.exists(path)
    with open(path) as handle:
        assert "pBox reproduction" in handle.read()


def test_load_section_roundtrip(tmp_path):
    (tmp_path / "x.txt").write_text("line1\nline2\n")
    assert load_section(str(tmp_path), "x.txt") == ["line1", "line2"]
    assert load_section(str(tmp_path), "absent.txt") is None


def test_sections_cover_every_table_and_figure():
    titles = " ".join(title for _f, title in SECTIONS)
    for label in ("Figure 1 ", "Figure 2 ", "Figure 3 ", "Table 3",
                  "Figure 11", "Figure 12", "Figure 13", "Figure 14",
                  "Table 4", "Figure 15", "Figure 16", "Table 5",
                  "Section 6.8"):
        assert label in titles
