"""Tests for the results report generator."""

import os

from repro.report import SECTIONS, generate_report, load_section, write_report


def test_report_handles_missing_results(tmp_path):
    # +5: the metrics-registry, attribution, sweep, chaos, and scale
    # snapshot sections are tracked alongside the SECTIONS files.
    total = len(SECTIONS) + 5
    report = generate_report(str(tmp_path))
    assert "not yet generated" in report
    assert "%d of %d sections missing" % (total, total) in report


def test_report_renders_tables(tmp_path):
    (tmp_path / "tab05_analyzer.txt").write_text(
        "# Table 5 commentary\n"
        "app\tmanual\tdetected\n"
        "mysql\t57\t40\n"
    )
    report = generate_report(str(tmp_path))
    assert "| app | manual | detected |" in report
    assert "| mysql | 57 | 40 |" in report
    assert "Table 5 commentary" in report


def test_report_renders_attribution_snapshot(tmp_path):
    import json

    (tmp_path / "BENCH_attribution.json").write_text(json.dumps({
        "overhead": {"attached_ratio": 0.021, "detached_ratio": 0.002},
        "cases": {
            "c17": {"victim_p95_us": 5_200, "top_share": 0.97,
                    "top_aggressor": "analytics (pbox 2)", "actions": 120,
                    "penalty_us": 1_500_000, "recovered_est_us": 80_000},
            "c2": {"victim_p95_us": 6_000, "top_share": 0.88,
                   "top_aggressor": "nopk-inserter (pbox 2)", "actions": 40,
                   "penalty_us": 200_000, "recovered_est_us": None},
        },
    }))
    report = generate_report(str(tmp_path))
    assert "contention attribution" in report
    assert "analytics (pbox 2)" in report
    assert "97%" in report
    assert "2.1% attached" in report
    assert "n/a" in report  # c2 has no recovered estimate


def test_write_report_creates_file(tmp_path):
    (tmp_path / "fig16_overhead.txt").write_text("a\tb\n1\t2\n")
    path = write_report(str(tmp_path))
    assert os.path.exists(path)
    with open(path) as handle:
        assert "pBox reproduction" in handle.read()


def test_load_section_roundtrip(tmp_path):
    (tmp_path / "x.txt").write_text("line1\nline2\n")
    assert load_section(str(tmp_path), "x.txt") == ["line1", "line2"]
    assert load_section(str(tmp_path), "absent.txt") is None


def test_sections_cover_every_table_and_figure():
    titles = " ".join(title for _f, title in SECTIONS)
    for label in ("Figure 1 ", "Figure 2 ", "Figure 3 ", "Table 3",
                  "Figure 11", "Figure 12", "Figure 13", "Figure 14",
                  "Table 4", "Figure 15", "Figure 16", "Table 5",
                  "Section 6.8"):
        assert label in titles
