"""Validate the analytical interference model against the simulator."""

import pytest

from repro.core import IsolationRule, OperationCosts, PBoxManager, PBoxRuntime
from repro.core.analysis import SingleResourceModel, predict_equilibrium_penalty
from repro.core.events import StateEvent
from repro.sim import Compute, Kernel, Mutex, Now, Sleep
from repro.sim.clock import seconds


def simulate(hold_us, gap_us, victim_service_us, penalty_us=0,
             duration_s=12, seed=2):
    """Measure the victim's mean latency in the one-noisy/one-victim
    scenario the model describes; an optional fixed sleep is injected
    into the noisy loop to stand in for a penalty."""
    kernel = Kernel(cores=4, seed=seed)
    resource = Mutex(kernel, "resource")
    latencies = []

    def noisy():
        while kernel.now_us < seconds(duration_s):
            yield from resource.acquire()
            yield Compute(us=hold_us)
            resource.release()
            pause = gap_us + penalty_us
            if pause:
                yield Sleep(us=pause)

    def victim():
        rng = kernel.rng("victim-arrivals")
        while kernel.now_us < seconds(duration_s):
            # Wide-jitter arrivals (mean well above the noisy cycle)
            # decouple the victim from the cycle phase, matching the
            # model's random-incidence assumption.
            yield Sleep(us=int(rng.uniform(10_000, 90_000)))
            began = yield Now()
            yield from resource.acquire()
            resource.release()
            yield Compute(us=victim_service_us)
            if kernel.now_us > seconds(0.5):
                latencies.append((yield Now()) - began)

    kernel.spawn(noisy, name="noisy")
    kernel.spawn(victim, name="victim")
    kernel.run(until_us=seconds(duration_s))
    return sum(latencies) / len(latencies)


@pytest.mark.parametrize("hold_us,gap_us", [
    (5_000, 5_000),
    (10_000, 2_000),
    (2_000, 8_000),
])
def test_model_predicts_simulated_latency(hold_us, gap_us):
    service = 500
    model = SingleResourceModel(hold_us, gap_us, service)
    predicted = model.victim_latency_us()
    measured = simulate(hold_us, gap_us, service)
    assert measured == pytest.approx(predicted, rel=0.15)


def test_model_predicts_penalty_effect():
    model = SingleResourceModel(10_000, 2_000, 500)
    penalty = 20_000
    predicted = model.victim_latency_us(penalty_us=penalty)
    measured = simulate(10_000, 2_000, 500, penalty_us=penalty)
    assert measured == pytest.approx(predicted, rel=0.2)


def test_penalty_for_goal_meets_goal_in_simulation():
    service = 500
    model = SingleResourceModel(8_000, 2_000, service)
    goal = 1.0  # victim tf <= 1: wait at most equal to service time
    penalty = model.penalty_for_goal(goal)
    assert penalty > 0
    measured = simulate(8_000, 2_000, service, penalty_us=int(penalty))
    measured_tf = (measured - service) / service
    assert measured_tf <= goal * 1.3  # meets the goal within noise


def test_penalty_for_goal_zero_when_goal_already_met():
    model = SingleResourceModel(1_000, 50_000, 1_000)
    # duty ~2%, wait ~10us, tf ~0.01 << 0.5.
    assert model.penalty_for_goal(0.5) == 0


def test_closed_form_matches_bisection():
    model = SingleResourceModel(8_000, 2_000, 500)
    closed = model.penalty_for_goal(0.5)
    numeric = predict_equilibrium_penalty(model, 0.5)
    assert numeric == pytest.approx(closed, rel=0.05)


def test_duty_cycle_and_reduction_monotone_in_penalty():
    model = SingleResourceModel(5_000, 5_000, 500)
    duties = [model.duty_cycle(p) for p in (0, 5_000, 20_000, 100_000)]
    assert duties == sorted(duties, reverse=True)
    reductions = [model.reduction_ratio(p) for p in (0, 5_000, 20_000)]
    assert reductions == sorted(reductions)
    assert reductions[0] == 0.0


def test_paper_p1_lands_in_the_right_regime():
    """p1 is the same order of magnitude as the exact required penalty."""
    model = SingleResourceModel(8_000, 2_000, 500)
    exact = model.penalty_for_goal(0.5)
    # td(victim): mean wait without penalty; te(noisy): its busy time.
    p1 = model.paper_p1(victim_defer_us=model.expected_wait_us(0),
                        noisy_exec_us=model.hold_us)
    assert exact > 0
    if p1 > 0:
        assert 0.02 <= p1 / exact <= 50


def test_noisy_slowdown_accounting():
    model = SingleResourceModel(5_000, 5_000, 500)
    assert model.noisy_slowdown(10_000) == pytest.approx(1.0)


def test_model_rejects_bad_parameters():
    with pytest.raises(ValueError):
        SingleResourceModel(0, 1, 1)
    with pytest.raises(ValueError):
        SingleResourceModel(1, -1, 1)
    model = SingleResourceModel(1_000, 1_000, 500)
    with pytest.raises(ValueError):
        model.penalty_for_goal(0)
