"""Tests for the functional (Figure 7 style) API module."""

import pytest

from repro.core import IsolationRule, OperationCosts, PBoxManager, PBoxRuntime
from repro.core import api
from repro.core.api import StateEvent
from repro.sim import Compute, Kernel
from repro.sim.clock import seconds


@pytest.fixture
def runtime_env():
    kernel = Kernel(cores=2)
    manager = PBoxManager(kernel)
    runtime = PBoxRuntime(manager, costs=OperationCosts.zero())
    api.set_runtime(runtime)
    yield kernel, manager, runtime
    api.set_runtime(None)


def test_requires_installed_runtime():
    api.set_runtime(None)
    with pytest.raises(RuntimeError):
        api.create_pbox(IsolationRule(50))


def test_figure8_usage_pattern(runtime_env):
    """The do_handle_one_connection / do_command shape from Figure 8."""
    kernel, manager, _runtime = runtime_env
    seen = {}

    def do_handle_one_connection():
        rule = IsolationRule(isolation_level=30)
        psid = api.create_pbox(rule)
        for _command in range(3):
            current = api.get_current_pbox()
            assert current == psid
            api.activate_pbox(current)
            yield Compute(us=500)  # dispatch_command
            api.freeze_pbox(current)
        seen["activities"] = manager.get(psid).activities_completed
        api.release_pbox(psid)

    kernel.spawn(do_handle_one_connection)
    kernel.run(until_us=seconds(1))
    assert seen["activities"] == 3


def test_figure9_usage_pattern(runtime_env):
    """The srv_conc_enter/exit shape from Figure 9."""
    kernel, manager, _runtime = runtime_env
    n_active = object()  # &srv_conc.n_active
    recorded = {}

    def worker():
        psid = api.create_pbox(IsolationRule(isolation_level=50))
        api.activate_pbox()
        api.update_pbox(n_active, StateEvent.PREPARE)
        yield Compute(us=100)
        api.update_pbox(n_active, StateEvent.ENTER)
        api.update_pbox(n_active, StateEvent.HOLD)
        yield Compute(us=200)
        api.update_pbox(n_active, StateEvent.UNHOLD)
        api.freeze_pbox()
        recorded["defer"] = manager.get(psid).history[-1].defer_us
        api.release_pbox(psid)

    kernel.spawn(worker)
    kernel.run(until_us=seconds(1))
    assert recorded["defer"] == 100


def test_bind_unbind_round_trip(runtime_env):
    kernel, manager, _runtime = runtime_env
    result = {}

    def body():
        psid = api.create_pbox(IsolationRule(50))
        api.unbind_pbox("conn-key")
        result["rebound"] = api.bind_pbox("conn-key")
        result["psid"] = psid
        yield Compute(us=10)

    kernel.spawn(body)
    kernel.run(until_us=seconds(1))
    assert result["rebound"] == result["psid"]


def test_get_runtime_returns_installed(runtime_env):
    _kernel, _manager, runtime = runtime_env
    assert api.get_runtime() is runtime
