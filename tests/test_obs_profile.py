"""Tests for the virtual-time flame profile builder.

Schema coverage: the folded-stack text format (flamegraph.pl), the
speedscope JSON file format, and the self-contained HTML summary, both
from hand-built profiles and from a real recorded case run.
"""

import json

import pytest

from repro.cases import Solution, get_case, run_case
from repro.obs import FoldedProfile, SpanRecorder
from repro.obs.profile import SPEEDSCOPE_SCHEMA
from repro.obs.spans import PBOX_TRACK, THREAD_TRACK


def make_profile():
    profile = FoldedProfile(name="unit")
    profile.add(("worker", "running"), 700)
    profile.add(("worker", "wait", "futex:lock"), 200)
    profile.add(("worker", "wait", "futex:lock"), 100)
    return profile


# ---------------------------------------------------------------------------
# Core container behaviour
# ---------------------------------------------------------------------------


def test_add_merges_identical_stacks():
    profile = make_profile()
    assert profile.weights[("worker", "wait", "futex:lock")] == 300
    assert profile.total_us() == 1_000


def test_add_ignores_nonpositive_and_empty():
    profile = FoldedProfile()
    profile.add(("a",), 0)
    profile.add(("a",), -5)
    profile.add((), 100)
    assert profile.weights == {}


def test_stacks_sorted_heaviest_first():
    profile = make_profile()
    stacks = profile.stacks()
    assert stacks[0] == (("worker", "running"), 700)


# ---------------------------------------------------------------------------
# Folded output (flamegraph.pl format)
# ---------------------------------------------------------------------------


def test_folded_lines_format():
    lines = make_profile().folded_lines()
    assert lines == ["worker;running 700", "worker;wait;futex:lock 300"]
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        assert stack and int(weight) > 0


def test_write_folded_roundtrip(tmp_path):
    path = tmp_path / "out.folded"
    make_profile().write_folded(str(path))
    assert path.read_text().splitlines() == make_profile().folded_lines()


# ---------------------------------------------------------------------------
# Speedscope output
# ---------------------------------------------------------------------------


def test_speedscope_schema():
    doc = make_profile().to_speedscope()
    assert doc["$schema"] == SPEEDSCOPE_SCHEMA
    frames = doc["shared"]["frames"]
    assert all(set(frame) == {"name"} for frame in frames)
    [prof] = doc["profiles"]
    assert prof["type"] == "sampled"
    assert prof["unit"] == "microseconds"
    assert prof["startValue"] == 0
    assert prof["endValue"] == 1_000
    assert len(prof["samples"]) == len(prof["weights"]) == 2
    # Every sample is a list of valid frame indices.
    for sample in prof["samples"]:
        assert all(0 <= index < len(frames) for index in sample)
    # The heaviest stack resolves back to its frame names.
    resolved = [frames[i]["name"] for i in prof["samples"][0]]
    assert resolved == ["worker", "running"]


def test_speedscope_frames_deduplicated():
    doc = make_profile().to_speedscope()
    names = [frame["name"] for frame in doc["shared"]["frames"]]
    assert len(names) == len(set(names))
    assert "worker" in names and "futex:lock" in names


def test_write_speedscope_is_valid_json(tmp_path):
    path = tmp_path / "out.speedscope.json"
    make_profile().write_speedscope(str(path))
    with open(path) as handle:
        doc = json.load(handle)
    assert doc["profiles"][0]["weights"] == [700, 300]


# ---------------------------------------------------------------------------
# HTML output
# ---------------------------------------------------------------------------


def test_html_is_self_contained():
    html = make_profile().to_html()
    assert html.startswith("<!DOCTYPE html>")
    assert "<script" not in html
    assert "http" not in html  # no external references
    assert "futex:lock" in html


def test_html_escapes_frame_names():
    profile = FoldedProfile()
    profile.add(("<evil>", "running"), 100)
    html = profile.to_html()
    assert "<evil>" not in html
    assert "&lt;evil&gt;" in html


def test_html_includes_attribution_when_given(tmp_path):
    attribution = {
        "cells": [{"aggressor": "noisy (pbox 2)", "resource": "lock",
                   "victim": "victim (pbox 1)", "blamed_us": 1_500,
                   "waits": 3, "p95_us": 700, "actions": 2,
                   "penalty_us": 900}],
        "cycles": [],
    }
    html = make_profile().to_html(attribution=attribution)
    assert "Contention attribution" in html
    assert "noisy (pbox 2)" in html
    path = tmp_path / "out.html"
    make_profile().write_html(str(path), attribution=attribution)
    assert "noisy (pbox 2)" in path.read_text()


# ---------------------------------------------------------------------------
# Folding recorded spans
# ---------------------------------------------------------------------------


def test_from_recorder_folds_thread_and_pbox_tracks():
    recorder = SpanRecorder()
    recorder.thread_names[3] = "client-a"
    recorder.spans = [
        (THREAD_TRACK, 3, "running", "sched", 0, 400, None),
        (THREAD_TRACK, 3, "futex:lock", "futex", 400, 300, None),
        (THREAD_TRACK, 3, "sleep", "sched", 700, 100, None),
        (THREAD_TRACK, 3, "pbox penalty", "penalty", 800, 50, None),
        (PBOX_TRACK, 1, "activity", "pbox", 0, 1_000, None),
        (PBOX_TRACK, 1, "defer:lock", "vres", 100, 250, None),
        (PBOX_TRACK, 1, "penalty", "penalty", 1_000, 60, None),
    ]
    profile = FoldedProfile.from_recorder(recorder, name="case")
    weights = profile.weights
    assert weights[("client-a", "running")] == 400
    assert weights[("client-a", "wait", "futex:lock")] == 300
    assert weights[("client-a", "wait", "sleep")] == 100
    assert weights[("client-a", "penalty")] == 50
    # Activity self-time excludes the nested defer child.
    assert weights[("pbox:1", "activity")] == 750
    assert weights[("pbox:1", "activity", "defer:lock")] == 250
    assert weights[("pbox:1", "penalty")] == 60


def test_from_recorder_skips_zero_duration_spans():
    recorder = SpanRecorder()
    recorder.spans = [(THREAD_TRACK, 3, "running", "sched", 0, 0, None)]
    assert FoldedProfile.from_recorder(recorder).weights == {}


@pytest.fixture(scope="module")
def recorded_case():
    recorder = SpanRecorder()

    def observer(env):
        recorder.attach(env.kernel.trace)

    run_case(get_case("c17"), Solution.PBOX, duration_s=2, seed=1,
             observer=observer)
    return recorder


def test_case_profile_covers_wait_and_defer(recorded_case):
    profile = FoldedProfile.from_recorder(recorded_case, name="c17")
    joined = "\n".join(profile.folded_lines())
    assert "oltp;" in joined
    assert "analytics;" in joined
    assert "defer:buf_pool.free_blocks" in joined
    assert profile.total_us() > 0


def test_case_profile_speedscope_loads(recorded_case):
    profile = FoldedProfile.from_recorder(recorded_case, name="c17")
    doc = json.loads(json.dumps(profile.to_speedscope()))
    [prof] = doc["profiles"]
    assert prof["endValue"] == profile.total_us()
    assert len(prof["samples"]) == len(profile.weights)
