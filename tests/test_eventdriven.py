"""Unit tests for the event-driven worker pool (Section 5 machinery)."""

from repro.apps.eventdriven import EventDrivenConnection, PBoxWorkerPool
from repro.core import IsolationRule, OperationCosts, PBoxManager, PBoxRuntime
from repro.sim import Compute, Kernel, Now, Sleep
from repro.sim.clock import seconds


class EchoApp:
    """Minimal event-driven application for pool tests."""

    def __init__(self, kernel, runtime, workers=2, service_us=500):
        self.kernel = kernel
        self.runtime = runtime
        self.config = self
        self.isolation_level = 50
        self.service_us = service_us
        self.pool = PBoxWorkerPool(kernel, runtime, workers,
                                   self._handle, name="echo")

    def make_rule(self):
        return IsolationRule(isolation_level=self.isolation_level)

    def _handle(self, task):
        yield Compute(us=task.request.get("service_us", self.service_us))

    def connect(self, name):
        return EventDrivenConnection(self, name)


def make_app(pbox=True, workers=2, cores=4):
    kernel = Kernel(cores=cores)
    manager = PBoxManager(kernel, enabled=pbox)
    runtime = PBoxRuntime(manager, costs=OperationCosts.zero(), enabled=pbox)
    app = EchoApp(kernel, runtime, workers=workers)
    app.pool.start()
    return kernel, manager, runtime, app


def drive_client(kernel, app, requests, name="client", start_us=0):
    latencies = []
    conn = app.connect(name)

    def body():
        if start_us:
            yield Sleep(us=start_us)
        yield from conn.open()
        for request in requests:
            began = yield Now()
            yield from conn.execute(request)
            latencies.append((yield Now()) - began)
        yield from conn.close()

    kernel.spawn(body, name=name)
    return latencies


def test_pool_processes_tasks():
    kernel, _m, _r, app = make_app()
    latencies = drive_client(kernel, app, [{}, {}, {}])
    kernel.run(until_us=seconds(1))
    assert len(latencies) == 3
    assert all(latency >= app.service_us for latency in latencies)
    assert app.pool.tasks_processed == 3


def test_pool_limits_concurrency():
    kernel, _m, _r, app = make_app(workers=1)
    a = drive_client(kernel, app, [{"service_us": 10_000}], name="a")
    b = drive_client(kernel, app, [{"service_us": 100}], name="b",
                     start_us=500)
    kernel.run(until_us=seconds(1))
    assert b[0] >= 9_000  # queued behind a's task on the single worker


def test_queue_wait_counts_as_defer_time():
    kernel, manager, _r, app = make_app(workers=1)
    drive_client(kernel, app, [{"service_us": 20_000}], name="hog")
    drive_client(kernel, app, [{"service_us": 100}], name="victim",
                 start_us=1_000)
    kernel.run(until_us=seconds(1))
    # The victim connection's pBox history shows the queue wait as defer.
    victims = [pb for pb in manager.pboxes()
               if pb.history and pb.history[-1].defer_us > 10_000]
    # pBoxes are released at close; check stats instead.
    assert manager.stats["events"] >= 4
    assert manager.stats["detections"] >= 1


def test_penalized_connection_tasks_are_deferred():
    kernel, manager, _r, app = make_app(workers=1)
    conn = app.connect("penalized")
    other_latencies = drive_client(kernel, app, [{"service_us": 100}],
                                   name="other", start_us=2_000)
    done = {}

    def penalized_client():
        yield from conn.open()
        pbox = manager.get(conn.psid)
        pbox.penalty_until_us = 30_000
        began = yield Now()
        yield from conn.execute({"service_us": 100})
        done["latency"] = (yield Now()) - began
        yield from conn.close()

    kernel.spawn(penalized_client, name="penalized")
    kernel.run(until_us=seconds(1))
    # The penalized connection waited out its deferral window while the
    # other connection's task went ahead.
    assert done["latency"] >= 28_000
    assert other_latencies[0] < 10_000


def test_disabled_runtime_pool_still_works():
    kernel, manager, _r, app = make_app(pbox=False)
    latencies = drive_client(kernel, app, [{}, {}])
    kernel.run(until_us=seconds(1))
    assert len(latencies) == 2
    assert manager.pboxes() == []


def test_lazy_rebind_on_same_worker():
    kernel, _m, runtime, app = make_app(workers=1)
    drive_client(kernel, app, [{}, {}, {}, {}], name="only-client")
    kernel.run(until_us=seconds(1))
    # A single connection served repeatedly by the same worker hits the
    # lazy-unbind fast path after the first task.
    assert runtime.stats["lazy_rebinds"] >= 3


def test_connection_close_releases_parked_pbox():
    kernel, manager, runtime, app = make_app()
    conn = app.connect("c")

    def body():
        yield from conn.open()
        psid = conn.psid
        assert manager.get(psid) is not None
        yield from conn.execute({})
        yield from conn.close()
        assert manager.get(psid) is None
        assert conn.psid is None

    kernel.spawn(body)
    kernel.run(until_us=seconds(1))
