"""Tests for the closed-loop client driver and kernel edge behaviour."""

import pytest

from repro.apps.base import AppConfig, Connection, Instrumentation
from repro.baselines.base import RequestContext, SolutionPolicy
from repro.core import OperationCosts, PBoxManager, PBoxRuntime
from repro.sim import Compute, Kernel, Now, Sleep
from repro.sim.clock import seconds
from repro.workloads import LatencyRecorder, closed_loop_client


class EchoConnection(Connection):
    def _handle(self, request):
        """Burn the requested service time."""
        yield Compute(us=request.get("service_us", 500))


def make_conn(kernel):
    manager = PBoxManager(kernel, enabled=False)
    runtime = PBoxRuntime(manager, costs=OperationCosts.zero(),
                          enabled=False)

    class EchoApp:
        def __init__(self):
            self.runtime = runtime
            self.instr = Instrumentation(runtime)
            self.config = AppConfig()

    return EchoConnection(EchoApp(), "echo")


def test_client_requires_stop_time():
    kernel = Kernel(cores=1)
    with pytest.raises(ValueError):
        closed_loop_client(kernel, make_conn(kernel), dict,
                           LatencyRecorder("r"), stop_us=None)


def test_client_start_delay_and_stop():
    kernel = Kernel(cores=1)
    recorder = LatencyRecorder("r")
    body = closed_loop_client(
        kernel, make_conn(kernel), lambda: {"service_us": 1_000},
        recorder, start_us=5_000, stop_us=10_000,
    )
    kernel.spawn(body)
    kernel.run(until_us=seconds(1))
    # ~5 ms of runway at 1 ms per request: about five requests.
    assert 3 <= recorder.count <= 6
    assert min(recorder.completion_times_us) >= 6_000


def test_think_time_paces_requests():
    kernel = Kernel(cores=1)
    fast = LatencyRecorder("fast")
    slow = LatencyRecorder("slow")
    kernel.spawn(closed_loop_client(
        kernel, make_conn(kernel), lambda: {"service_us": 100},
        fast, stop_us=100_000))
    kernel.spawn(closed_loop_client(
        kernel, make_conn(kernel), lambda: {"service_us": 100},
        slow, stop_us=100_000, think_us=5_000))
    kernel.run(until_us=200_000)
    assert fast.count > slow.count * 3


def test_think_time_jitter_uses_rng():
    kernel = Kernel(cores=1, seed=9)
    recorder = LatencyRecorder("r")
    kernel.spawn(closed_loop_client(
        kernel, make_conn(kernel), lambda: {"service_us": 10},
        recorder, stop_us=100_000, think_us=2_000,
        rng=kernel.rng("think")))
    kernel.run(until_us=200_000)
    gaps = {b - a for a, b in zip(recorder.completion_times_us,
                                  recorder.completion_times_us[1:])}
    assert len(gaps) > 3  # jittered, not constant


def test_admission_delay_is_measured_as_latency():
    """Policy admission (Retro's throttle) counts toward the latency the
    client observes -- the accounting Figure 11's Retro shape rests on."""

    class StallPolicy(SolutionPolicy):
        name = "stall"

        def before_request(self, ctx, request):
            yield Sleep(us=7_000)

    kernel = Kernel(cores=1)
    recorder = LatencyRecorder("r")
    policy = StallPolicy()
    policy.attach(kernel)
    kernel.spawn(closed_loop_client(
        kernel, make_conn(kernel), lambda: {"service_us": 1_000},
        recorder, stop_us=50_000, policy=policy,
        policy_ctx=RequestContext("g", "c")))
    kernel.run(until_us=100_000)
    assert min(recorder.samples_us) >= 8_000


def test_after_request_hook_sees_latency():
    seen = []

    class Watcher(SolutionPolicy):
        def after_request(self, ctx, request, latency_us):
            seen.append((ctx.group, latency_us))

    kernel = Kernel(cores=1)
    policy = Watcher()
    policy.attach(kernel)
    kernel.spawn(closed_loop_client(
        kernel, make_conn(kernel), lambda: {"service_us": 2_000},
        LatencyRecorder("r"), stop_us=20_000, policy=policy,
        policy_ctx=RequestContext("victims", "c")))
    kernel.run(until_us=50_000)
    assert seen
    assert all(group == "victims" for group, _ in seen)
    assert all(latency >= 2_000 for _, latency in seen)


# ---------------------------------------------------------------------------
# Kernel edges
# ---------------------------------------------------------------------------

def test_call_every_can_stop_itself():
    kernel = Kernel(cores=1)
    ticks = []

    def tick():
        ticks.append(kernel.now_us)
        if len(ticks) >= 3:
            return False

    kernel.call_every(10_000, tick)
    kernel.run(until_us=100_000)
    assert ticks == [10_000, 20_000, 30_000]


def test_post_in_the_past_fires_now():
    kernel = Kernel(cores=1)
    fired = []

    def body():
        yield Sleep(us=5_000)
        kernel.post(1_000, lambda: fired.append(kernel.now_us))
        yield Sleep(us=1_000)

    kernel.spawn(body)
    kernel.run()
    assert fired == [5_000]


def test_timer_cancellation():
    kernel = Kernel(cores=1)
    fired = []
    timer = kernel.post(10_000, lambda: fired.append(1))
    timer.cancel()

    def idle():
        yield Sleep(us=20_000)

    kernel.spawn(idle)
    kernel.run()
    assert fired == []


def test_charge_current_outside_thread_is_noop():
    kernel = Kernel(cores=1)
    kernel.charge_current(1_000)  # no current thread: silently ignored
    assert kernel.current_thread is None


def test_spawn_same_thread_twice_rejected():
    from repro.sim import SimThread, Spawn

    kernel = Kernel(cores=1)

    def child():
        yield Compute(us=10)

    thread = SimThread(child, name="child")

    def parent():
        yield Spawn(thread)
        yield Spawn(thread)

    kernel.spawn(parent)
    # Restarting an already-started thread is a kernel-level error.
    with pytest.raises(ValueError):
        kernel.run()


def test_kernel_requires_a_core():
    with pytest.raises(ValueError):
        Kernel(cores=0)


def test_syscall_type_checked():
    kernel = Kernel(cores=1)

    def bad():
        yield "not-a-syscall"

    kernel.spawn(bad)
    # Yielding a non-syscall is a kernel-level TypeError.
    with pytest.raises(TypeError):
        kernel.run()
