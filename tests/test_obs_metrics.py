"""Tests for the metrics registry: histogram math, merge, collector."""

import random

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
)
from repro.obs.tracepoints import TracepointBus
from repro.workloads.stats import percentile


def test_bucket_boundaries_small_values_exact():
    # Below 16 every value has its own unit-wide bucket.
    for value in range(16):
        assert bucket_index(value) == value
        assert bucket_bounds(value) == (value, value + 1)


def test_bucket_boundaries_first_log_range():
    # [16, 32) still has unit-wide buckets (16 sub-buckets per octave);
    # [32, 64) is the first range with width-2 buckets.
    assert bucket_index(16) == 16
    assert bucket_bounds(bucket_index(16)) == (16, 17)
    assert bucket_bounds(bucket_index(32)) == (32, 34)
    assert bucket_index(33) == bucket_index(32)  # shares the [32,34) bucket


def test_bucket_bounds_contain_value_and_are_tight():
    for value in (0, 1, 15, 16, 100, 1_000, 123_456, 10**9):
        lo, hi = bucket_bounds(bucket_index(value))
        assert lo <= value < hi
        # Relative bucket width is at most 1/16 of the lower bound.
        if lo >= 16:
            assert (hi - lo) <= lo / 16


def test_bucket_index_is_monotonic():
    previous = -1
    for value in range(0, 5_000):
        index = bucket_index(value)
        assert index >= previous
        previous = index


def test_histogram_negative_values_clamped_to_zero():
    histogram = Histogram("h")
    histogram.record(-5)
    assert histogram.count == 1
    assert histogram.min_value == 0


def test_histogram_percentile_agrees_with_exact_percentile():
    rng = random.Random(42)
    samples = [rng.randint(0, 500_000) for _ in range(5_000)]
    histogram = Histogram("lat")
    histogram.record_many(samples)
    for p in (0, 25, 50, 90, 95, 99, 100):
        exact = percentile(samples, p)
        lo, hi = histogram.percentile_bounds(p)
        assert lo <= exact < hi
        # The reported value (bucket upper bound) is within one bucket
        # width above the exact percentile.
        assert histogram.percentile(p) == hi


def test_histogram_merge_equals_combined_recording():
    rng = random.Random(7)
    first_samples = [rng.randint(0, 10_000) for _ in range(500)]
    second_samples = [rng.randint(0, 10_000) for _ in range(700)]
    first = Histogram("a")
    first.record_many(first_samples)
    second = Histogram("b")
    second.record_many(second_samples)
    combined = Histogram("c")
    combined.record_many(first_samples + second_samples)
    first.merge(second)
    assert first.buckets == combined.buckets
    assert first.count == combined.count
    assert first.total == combined.total
    assert first.min_value == combined.min_value
    assert first.max_value == combined.max_value
    assert first.percentile_bounds(95) == combined.percentile_bounds(95)


def test_histogram_merge_is_order_independent():
    # Merging is bucket-count addition, so any fold order produces the
    # same histogram -- the property the telemetry sketches inherit.
    rng = random.Random(13)
    parts = [[rng.randint(0, 100_000) for _ in range(50)] for _ in range(4)]

    def fold(order):
        merged = Histogram("m")
        for index in order:
            part = Histogram("p")
            part.record_many(parts[index])
            merged.merge(part)
        return merged

    forward = fold([0, 1, 2, 3])
    shuffled = fold([2, 0, 3, 1])
    assert forward.buckets == shuffled.buckets
    assert forward.count == shuffled.count
    assert forward.min_value == shuffled.min_value
    assert forward.max_value == shuffled.max_value


def test_histogram_merge_with_empty_is_identity():
    histogram = Histogram("h")
    histogram.record_many([5, 10, 20])
    before = dict(histogram.buckets)
    histogram.merge(Histogram("empty"))
    assert histogram.buckets == before
    assert histogram.count == 3


def test_histogram_empty_raises():
    histogram = Histogram("h")
    with pytest.raises(ValueError):
        histogram.mean()
    with pytest.raises(ValueError):
        histogram.percentile(50)


def test_registry_accessors_are_get_or_create():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    registry.inc("x", 3)
    assert registry.counters["x"].value == 3


def test_registry_json_roundtrip(tmp_path):
    registry = MetricsRegistry()
    registry.inc("requests", 10)
    registry.gauge("depth").set(4)
    registry.gauge("depth").set(2)
    registry.histogram("lat").record_many([5, 50, 500])
    path = str(tmp_path / "metrics.json")
    registry.save_json(path)
    loaded = MetricsRegistry.load_json(path)
    assert loaded.counters["requests"].value == 10
    assert loaded.gauges["depth"].value == 2
    assert loaded.gauges["depth"].max_value == 4
    assert loaded.histograms["lat"].count == 3
    assert loaded.histograms["lat"].buckets == \
        registry.histograms["lat"].buckets


def test_registry_merge():
    left = MetricsRegistry()
    right = MetricsRegistry()
    left.inc("n", 1)
    right.inc("n", 2)
    right.histogram("h").record(100)
    left.merge(right)
    assert left.counters["n"].value == 3
    assert left.histograms["h"].count == 1


def test_registry_format_report_and_table():
    registry = MetricsRegistry()
    registry.inc("events", 5)
    registry.histogram("lat_us").record_many(range(100))
    report = registry.format_report()
    assert "metrics registry" in report
    assert "events" in report
    assert "p50" in report and "p95" in report and "p99" in report
    table = registry.format_table()
    assert table[0].startswith("metric\tkind")
    assert any(line.startswith("events\tcounter") for line in table)
    assert any(line.startswith("lat_us\thistogram") for line in table)


def test_collector_translates_tracepoints_to_metrics():
    bus = TracepointBus()
    collector = MetricsCollector()
    collector.attach(bus)
    bus.point("sched.switch").fire(0, tid=1, name="t", core=0, slice_us=100)
    bus.point("futex.wait").fire(10, tid=1, key="k", waiters=1)
    bus.point("sched.enqueue").fire(250, tid=1, name="t")
    bus.point("futex.wake").fire(250, key="k", requested=1, woken=[1])
    registry = collector.registry
    assert registry.counters["sched.context_switches"].value == 1
    assert registry.counters["futex.waits"].value == 1
    assert registry.counters["futex.woken"].value == 1
    assert registry.histograms["futex.wait_us"].count == 1
    lo, hi = registry.histograms["futex.wait_us"].percentile_bounds(50)
    assert lo <= 240 < hi
    collector.detach()
    bus.point("sched.switch").fire(300, tid=1, name="t", core=0, slice_us=1)
    assert registry.counters["sched.context_switches"].value == 1
