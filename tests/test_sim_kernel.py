"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    Compute,
    DeadlockError,
    FutexWait,
    FutexWake,
    Join,
    Kernel,
    Now,
    SimThread,
    Sleep,
    Spawn,
    ThreadState,
    Yield,
)


def test_compute_advances_virtual_time():
    kernel = Kernel(cores=1)
    seen = {}

    def body():
        yield Compute(us=1_000)
        seen["t"] = yield Now()

    kernel.spawn(body)
    kernel.run()
    assert seen["t"] == 1_000


def test_sleep_does_not_consume_cpu():
    kernel = Kernel(cores=1)

    def body():
        yield Sleep(us=5_000)

    thread = kernel.spawn(body)
    kernel.run()
    assert kernel.now_us == 5_000
    assert thread.cpu_time_us == 0


def test_two_threads_share_one_core():
    kernel = Kernel(cores=1)
    done = {}

    def body(name):
        yield Compute(us=10_000)
        done[name] = yield Now()

    kernel.spawn(lambda: body("a"))
    kernel.spawn(lambda: body("b"))
    kernel.run()
    # 20 ms of total work on one core: the later finisher lands at 20 ms.
    assert max(done.values()) == 20_000


def test_two_threads_on_two_cores_run_in_parallel():
    kernel = Kernel(cores=2)
    done = {}

    def body(name):
        yield Compute(us=10_000)
        done[name] = yield Now()

    kernel.spawn(lambda: body("a"))
    kernel.spawn(lambda: body("b"))
    kernel.run()
    assert done["a"] == 10_000
    assert done["b"] == 10_000


def test_round_robin_interleaves_threads():
    kernel = Kernel(cores=1, quantum_us=1_000)
    finish = {}

    def body(name):
        yield Compute(us=3_000)
        finish[name] = yield Now()

    kernel.spawn(lambda: body("a"))
    kernel.spawn(lambda: body("b"))
    kernel.run()
    # With 1 ms quanta both finish within one quantum of each other,
    # rather than a finishing fully before b starts.
    assert abs(finish["a"] - finish["b"]) <= 1_000


def test_futex_wait_and_wake():
    kernel = Kernel(cores=2)
    key = object()
    log = []

    def waiter():
        woken = yield FutexWait(key)
        log.append(("woken", woken, (yield Now())))

    def waker():
        yield Sleep(us=2_000)
        count = yield FutexWake(key)
        log.append(("woke_n", count))

    kernel.spawn(waiter)
    kernel.spawn(waker)
    kernel.run()
    assert ("woke_n", 1) in log
    assert ("woken", True, 2_000) in log


def test_futex_timeout_returns_false():
    kernel = Kernel(cores=1)
    result = {}

    def waiter():
        result["woken"] = yield FutexWait(object(), timeout_us=1_500)

    kernel.spawn(waiter)
    kernel.run()
    assert result["woken"] is False
    assert kernel.now_us == 1_500


def test_futex_wake_without_waiters_returns_zero():
    kernel = Kernel(cores=1)
    result = {}

    def body():
        result["n"] = yield FutexWake(object())

    kernel.spawn(body)
    kernel.run()
    assert result["n"] == 0


def test_spawn_and_join():
    kernel = Kernel(cores=2)
    result = {}

    def child():
        yield Compute(us=4_000)
        return 42

    def parent():
        thread = yield Spawn(SimThread(child, name="child"))
        result["value"] = yield Join(thread)
        result["t"] = yield Now()

    kernel.spawn(parent)
    kernel.run()
    assert result["value"] == 42
    assert result["t"] == 4_000


def test_join_already_exited_thread():
    kernel = Kernel(cores=1)
    result = {}

    def child():
        yield Compute(us=100)
        return "done"

    def parent(child_thread):
        yield Sleep(us=10_000)
        result["value"] = yield Join(child_thread)

    child_thread = kernel.spawn(child)
    kernel.spawn(lambda: parent(child_thread))
    kernel.run()
    assert result["value"] == "done"


def test_deadlock_detection():
    kernel = Kernel(cores=1)

    def stuck():
        yield FutexWait(object())

    kernel.spawn(stuck)
    with pytest.raises(DeadlockError):
        kernel.run()


def test_run_until_bounds_time():
    kernel = Kernel(cores=1)

    def forever():
        while True:
            yield Sleep(us=1_000)

    kernel.spawn(forever)
    kernel.run(until_us=10_500)
    assert kernel.now_us == 10_500


def test_yield_relinquishes_cpu():
    kernel = Kernel(cores=1)
    order = []

    def spinner():
        order.append("spinner-start")
        yield Yield()
        order.append("spinner-end")

    def other():
        order.append("other")
        yield Compute(us=0)

    kernel.spawn(spinner)
    kernel.spawn(other)
    kernel.run()
    assert order.index("other") < order.index("spinner-end")


def test_spawn_after_delays_start():
    kernel = Kernel(cores=1)
    seen = {}

    def late():
        seen["start"] = yield Now()

    kernel.spawn_after(7_000, late)
    kernel.run()
    assert seen["start"] == 7_000


def test_cgroup_quota_throttles_thread():
    kernel = Kernel(cores=2)
    # 20% CPU: 20 ms per 100 ms period.
    group = kernel.create_cgroup("slow", quota_us=20_000)
    done = {}

    def body(name):
        yield Compute(us=40_000)
        done[name] = yield Now()

    kernel.spawn(lambda: body("limited"), cgroup=group)
    kernel.spawn(lambda: body("free"))
    kernel.run()
    assert done["free"] == 40_000
    # 40 ms of work at 20 ms per 100 ms: finishes in the second period.
    assert done["limited"] >= 100_000


def test_cgroup_quota_change_takes_effect():
    kernel = Kernel(cores=1)
    group = kernel.create_cgroup("g", quota_us=10_000)
    done = {}

    def body():
        yield Compute(us=30_000)
        done["t"] = yield Now()

    kernel.spawn(body, cgroup=group)
    # Lift the quota after the first period.
    kernel.post(100_000, lambda: group.set_quota(None))
    kernel.run()
    # First period does 10 ms; remaining 20 ms run unthrottled after 100 ms.
    assert 100_000 <= done["t"] <= 125_000


def test_resume_hook_injects_delay_once():
    kernel = Kernel(cores=1)
    penalized = {"done": False}
    times = {}

    def hook(thread):
        if thread.name == "noisy" and not penalized["done"]:
            penalized["done"] = True
            return 5_000
        return 0

    kernel.add_resume_hook(hook)

    def noisy():
        yield Compute(us=1_000)
        times["after"] = yield Now()

    kernel.spawn(noisy, name="noisy")
    kernel.run()
    # 5 ms penalty applied before the first syscall plus 1 ms compute.
    assert times["after"] == 6_000
    assert kernel.stats["penalties"] == 1
    assert kernel.stats["penalty_us"] == 5_000


def test_charge_current_adds_overhead_before_next_syscall():
    kernel = Kernel(cores=1)
    times = {}

    def body():
        yield Compute(us=1_000)
        kernel.charge_current(250)
        yield Sleep(us=1_000)
        times["end"] = yield Now()

    kernel.spawn(body)
    kernel.run()
    assert times["end"] == 2_250


def test_affinity_restricts_cores():
    kernel = Kernel(cores=2)
    done = {}

    def body(name):
        yield Compute(us=10_000)
        done[name] = yield Now()

    kernel.spawn(lambda: body("pinned-a"), affinity={0})
    kernel.spawn(lambda: body("pinned-b"), affinity={0})
    kernel.run()
    # Both pinned to core 0: serialized, 20 ms total.
    assert max(done.values()) == 20_000


def test_thread_crash_is_reported():
    from repro.sim.errors import ThreadCrashedError

    kernel = Kernel(cores=1)

    def bad():
        yield Compute(us=10)
        raise RuntimeError("boom")

    kernel.spawn(bad, name="bad")
    with pytest.raises(ThreadCrashedError):
        kernel.run()
