"""Unit tests for the shared Instrumentation helper and Connection base."""

import pytest

from repro.apps.base import AppConfig, Connection, Instrumentation
from repro.core import IsolationRule, OperationCosts, PBoxManager, PBoxRuntime
from repro.core.pbox import PBoxStatus
from repro.sim import Compute, Kernel, Mutex, RWLock, Semaphore, Sleep
from repro.sim.clock import seconds


def make_env(pbox=True):
    kernel = Kernel(cores=4)
    manager = PBoxManager(kernel, enabled=pbox)
    runtime = PBoxRuntime(manager, costs=OperationCosts.zero(), enabled=pbox)
    return kernel, manager, runtime, Instrumentation(runtime)


def with_pbox(kernel, runtime, body_factory):
    """Run a body inside a created+activated pBox; returns its psid."""
    out = {}

    def body():
        psid = runtime.create_pbox(IsolationRule(isolation_level=50))
        runtime.activate_pbox(psid)
        yield from body_factory()
        runtime.freeze_pbox(psid)
        out["psid"] = psid

    kernel.spawn(body)
    return out


def test_acquire_mutex_records_defer_and_hold():
    kernel, manager, runtime, instr = make_env()
    mutex = Mutex(kernel, "m")

    def blocker():
        yield from mutex.acquire()
        yield Sleep(us=5_000)
        mutex.release()

    def victim_body():
        yield Sleep(us=1_000)  # arrive while held
        yield from instr.acquire_mutex(mutex)
        instr.release_mutex(mutex)

    kernel.spawn(blocker)
    out = with_pbox(kernel, runtime, victim_body)
    kernel.run(until_us=seconds(1))
    pbox = None
    # Released pboxes are gone; re-run capturing defers via history is
    # unnecessary -- check the manager saw the events instead.
    assert manager.stats["events"] == 4  # PREPARE/ENTER/HOLD/UNHOLD


def test_semaphore_annotations_balance():
    kernel, manager, runtime, instr = make_env()
    sem = Semaphore(kernel, units=2)

    def body():
        yield from instr.acquire_semaphore(sem)
        yield Compute(us=100)
        instr.release_semaphore(sem)

    with_pbox(kernel, runtime, body)
    kernel.run(until_us=seconds(1))
    assert sem.available == 2
    assert manager.stats["events"] == 4


def test_rwlock_annotations_shared_and_exclusive():
    kernel, manager, runtime, instr = make_env()
    lock = RWLock(kernel, "rw")

    def body():
        yield from instr.acquire_shared(lock)
        instr.release_shared(lock)
        yield from instr.acquire_exclusive(lock)
        instr.release_exclusive(lock)
        yield Compute(us=10)

    with_pbox(kernel, runtime, body)
    kernel.run(until_us=seconds(1))
    assert lock.reader_count == 0
    assert lock.writer is None
    assert manager.stats["events"] == 8


def test_instrumentation_noop_when_disabled():
    kernel, manager, runtime, instr = make_env(pbox=False)
    mutex = Mutex(kernel, "m")

    def body():
        yield from instr.acquire_mutex(mutex)
        instr.release_mutex(mutex)
        yield Compute(us=10)

    kernel.spawn(body)
    kernel.run(until_us=seconds(1))
    assert manager.stats["events"] == 0
    assert not mutex.locked


def test_connection_lifecycle_drives_pbox_statuses():
    kernel, manager, runtime, instr = make_env()

    class EchoConnection(Connection):
        def _handle(self, request):
            yield Compute(us=request["work_us"])

    class EchoApp:
        def __init__(self):
            self.runtime = runtime
            self.instr = instr
            self.config = AppConfig()

    conn = EchoConnection(EchoApp(), "c")
    seen = {}

    def body():
        yield from conn.open()
        pbox = manager.get(conn.psid)
        seen["after_open"] = pbox.status
        yield from conn.execute({"work_us": 500})
        seen["after_request"] = pbox.status
        seen["activities"] = pbox.activities_completed
        yield from conn.close()
        seen["after_close"] = manager.get(conn.psid or -1)

    kernel.spawn(body)
    kernel.run(until_us=seconds(1))
    assert seen["after_open"] is PBoxStatus.START
    assert seen["after_request"] is PBoxStatus.FROZEN
    assert seen["activities"] == 1
    assert seen["after_close"] is None


def test_connection_handle_must_be_overridden():
    kernel, manager, runtime, instr = make_env()

    class RawApp:
        def __init__(self):
            self.runtime = runtime
            self.instr = instr
            self.config = AppConfig()

    conn = Connection(RawApp(), "raw")

    def body():
        yield from conn.open()
        yield from conn.execute({})

    kernel.spawn(body)
    from repro.sim.errors import ThreadCrashedError
    with pytest.raises(ThreadCrashedError):
        kernel.run(until_us=seconds(1))


def test_app_config_default_rule():
    config = AppConfig()
    rule = config.make_rule()
    assert rule.isolation_level == 50
    assert rule.goal == pytest.approx(0.5)
