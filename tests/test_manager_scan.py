"""Dirty-set detection: scans touch dirtied pBoxes, never the population.

The manager's freeze-time detector is driven by a dirty set
(``dirty_psids``): state events and freezes mark a pBox, ``scan()``
drains the set in sorted-psid order and evaluates only its frozen
members.  These tests pin the contract docs/PERFORMANCE.md documents:

- a quiescent pBox is never re-evaluated, no matter how many scans run;
- a dirtied pBox is always evaluated on the next drain;
- drain order is sorted by psid (deterministic, independent of event
  arrival order);
- a dirty-set scan reaches the same verdicts as the reference
  full-population scan (hypothesis property over arbitrary scripts).

Also covered here: the :class:`PenaltyArmer` batching semantics the
penalty path arms through, and the shared :class:`PenaltyBudget`.
"""

from hypothesis import given, settings, strategies as st

from repro.core import IsolationRule, PBoxManager, PenaltyBudget, StateEvent
from repro.core.pbox import PBoxStatus
from repro.sim import Kernel, Sleep


def _spawned_manager(scan_policy="deferred", boxes=3, **kwargs):
    """Kernel + manager + ``boxes`` created-but-idle pBoxes."""
    kernel = Kernel(cores=2)
    manager = PBoxManager(kernel, scan_policy=scan_policy, **kwargs)
    rule = IsolationRule(isolation_level=50)
    made = {}

    def driver():
        made["boxes"] = [manager.create(rule) for _ in range(boxes)]
        yield Sleep(us=10)

    kernel.spawn(driver)
    kernel.run(until_us=100)
    return kernel, manager, made["boxes"]


# -- dirty-set mechanics ----------------------------------------------------

def test_quiescent_pbox_never_reevaluated():
    _kernel, manager, boxes = _spawned_manager()
    for pbox in boxes:
        manager.activate(pbox)
        manager.freeze(pbox)
    assert manager.scan() == len(boxes)
    # The pBoxes stay registered and frozen, but nothing dirtied them
    # again: repeated scans must not touch them.
    for _ in range(5):
        assert manager.scan() == 0
    assert manager.scan_stats["evaluated"] == len(boxes)


def test_dirtied_pbox_evaluated_on_next_drain():
    _kernel, manager, boxes = _spawned_manager()
    target = boxes[1]
    manager.activate(target)
    manager.freeze(target)          # freeze dirties it
    assert target.psid in manager.dirty_psids
    assert manager.scan() == 1
    assert target.psid not in manager.dirty_psids
    # A state event on the frozen pBox re-dirties it for the next scan.
    manager.update(target, "res", StateEvent.HOLD)
    assert target.psid in manager.dirty_psids
    assert manager.scan() == 1


def test_non_frozen_dirty_psids_are_skipped_not_lost():
    _kernel, manager, boxes = _spawned_manager()
    active = boxes[0]
    manager.activate(active)
    manager.update(active, "res", StateEvent.HOLD)   # dirty, mid-activity
    assert manager.scan() == 0
    assert manager.scan_stats["skipped_clean"] == 1
    # Its own freeze re-marks it, so nothing was lost by the skip.
    manager.freeze(active)
    assert manager.scan() == 1


def test_scan_drains_in_sorted_psid_order():
    _kernel, manager, boxes = _spawned_manager(boxes=4)
    order = []
    original = manager._pbox_level_detection
    manager._pbox_level_detection = lambda pbox: (
        order.append(pbox.psid), original(pbox))
    # Dirty in deliberately reversed creation order.
    for pbox in reversed(boxes):
        manager.activate(pbox)
        manager.freeze(pbox)
    manager.scan()
    assert order == sorted(pbox.psid for pbox in boxes)


def test_disabled_manager_scan_clears_without_work():
    _kernel, manager, boxes = _spawned_manager(enabled=False)
    manager.dirty_psids.update(pbox.psid for pbox in boxes)
    assert manager.scan() == 0
    assert manager.dirty_psids == set()
    assert manager.scan_stats["scans"] == 0


def test_eager_policy_scans_at_freeze():
    _kernel, manager, boxes = _spawned_manager(scan_policy="eager")
    pbox = boxes[0]
    manager.activate(pbox)
    manager.freeze(pbox)
    # Eager mode drained and evaluated the one-psid dirty set inline.
    assert pbox.psid not in manager.dirty_psids
    assert manager.scan_stats == {
        "scans": 1, "evaluated": 1, "skipped_clean": 0, "peak_dirty": 0}


# -- dirty-set scan == full-population scan (property) ----------------------

EVENTS = [StateEvent.PREPARE, StateEvent.ENTER, StateEvent.HOLD,
          StateEvent.UNHOLD]

step_strategy = st.tuples(
    st.integers(0, 2),      # pbox index
    st.integers(0, 2),      # resource key index
    st.integers(0, 5),      # 0-3 events, 4 activate, 5 freeze
    st.integers(0, 2_000),  # virtual-time gap before the step
)


def _run_script_then_scan(steps, full):
    """Replay ``steps`` on a deferred-scan manager, then scan one way."""
    kernel = Kernel(cores=2)
    manager = PBoxManager(kernel, scan_policy="deferred")
    rule = IsolationRule(isolation_level=50)
    state = {}

    def driver():
        boxes = [manager.create(rule) for _ in range(3)]
        state["boxes"] = boxes
        for pbox in boxes:
            manager.activate(pbox)
        for pbox_index, key_index, op, gap_us in steps:
            if gap_us:
                yield Sleep(us=gap_us)
            pbox = boxes[pbox_index]
            key = "res-%d" % key_index
            if op < 4:
                manager.update(pbox, key, EVENTS[op])
            elif op == 4:
                manager.activate(pbox)
            else:
                manager.freeze(pbox)

    kernel.spawn(driver)
    kernel.run(until_us=60_000_000)
    manager.scan(full=full)
    return manager, state["boxes"]


@settings(max_examples=40, deadline=None)
@given(st.lists(step_strategy, max_size=50))
def test_dirty_scan_matches_full_population_scan(steps):
    """Same script, dirty-set drain vs full scan: identical verdicts.

    Freeze-time detection is idempotent for a clean frozen pBox (an
    acting evaluation clears its blame; a non-acting one mutates
    nothing), so skipping quiescent pBoxes cannot change outcomes: the
    action/penalty counters and every pBox's pending penalty must
    match the reference scan that visits the whole population.
    """
    dirty_manager, dirty_boxes = _run_script_then_scan(steps, full=False)
    full_manager, full_boxes = _run_script_then_scan(steps, full=True)
    assert dirty_manager.stats == full_manager.stats
    for mine, theirs in zip(dirty_boxes, full_boxes):
        assert mine.pending_penalty_us == theirs.pending_penalty_us
        assert mine.penalties_received == theirs.penalties_received
        assert mine.status == theirs.status


# -- PenaltyArmer batching --------------------------------------------------

def test_armer_batches_same_expiry_into_one_dispatch():
    kernel = Kernel(cores=1)
    fired = []
    for index in range(4):
        kernel.penalty_armer.arm(500, lambda index=index: fired.append(index))
    kernel.run(until_us=1_000)
    assert fired == [0, 1, 2, 3]                      # arm order preserved
    assert kernel.penalty_armer.stats == {
        "armed": 4, "batched": 3, "dispatches": 1}


def test_armer_entries_cancel_independently():
    kernel = Kernel(cores=1)
    fired = []
    kept = kernel.penalty_armer.arm(500, lambda: fired.append("kept"))
    dropped = kernel.penalty_armer.arm(500, lambda: fired.append("dropped"))
    dropped.cancel()
    kernel.run(until_us=1_000)
    assert fired == ["kept"]
    assert kept.cancelled is False


def test_armer_burns_seq_for_batched_entries():
    """Joining a bucket consumes a kernel seq, exactly like post().

    This is what keeps batched arming bit-identical to unbatched: every
    later timer keeps the tie-break rank it would have had, and event
    accounting (``next(kernel._seq)`` probes) sees the same count.
    """
    kernel = Kernel(cores=1)
    before = next(kernel._seq)
    kernel.penalty_armer.arm(500, lambda: None)   # posts a dispatch timer
    kernel.penalty_armer.arm(500, lambda: None)   # joins: burns one seq
    after = next(kernel._seq)
    # One post + one burn + the two probes themselves.
    assert after - before == 3


# -- PenaltyBudget ----------------------------------------------------------

def test_budget_reserve_release_cycle():
    budget = PenaltyBudget(cap_us=1_000)
    assert budget.reserve(600) == 600
    assert budget.reserve(600) == 400            # trimmed to headroom
    assert budget.reserve(1) == 0                # denied: exhausted
    assert budget.stats["trimmed"] == 1
    assert budget.stats["denied"] == 1
    budget.release(400)
    assert budget.reserve(400) == 400
    assert budget.stats["peak_outstanding_us"] == 1_000


def test_budget_release_saturates_at_zero():
    budget = PenaltyBudget(cap_us=1_000)
    budget.reserve(100)
    budget.release(5_000)     # injected penalties bypass reserve
    assert budget.outstanding_us == 0
    budget.release(100)
    assert budget.outstanding_us == 0


def test_budget_unlimited_is_pure_accounting():
    budget = PenaltyBudget()
    assert budget.reserve(10**9) == 10**9
    assert budget.stats["denied"] == 0


def test_budget_rejects_non_positive_cap():
    import pytest
    with pytest.raises(ValueError):
        PenaltyBudget(cap_us=0)


def test_budget_denial_drops_manager_action():
    """An exhausted budget silently drops the penalty, not the run."""
    kernel, manager, boxes = _spawned_manager(
        scan_policy="eager", penalty_budget=PenaltyBudget(cap_us=1))
    manager.penalty_budget.reserve(1)            # exhaust it
    noisy, victim = boxes[0], boxes[1]
    actions_before = manager.stats["actions"]
    manager.take_action(noisy, victim, "res", victim_defer_us=10_000)
    assert manager.stats["actions"] == actions_before
    assert noisy.pending_penalty_us == 0
    assert manager.penalty_budget.stats["denied"] == 1
