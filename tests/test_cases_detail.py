"""Per-case regression tests: interference and mitigation floors.

Shortened versions of every Table 3 case with per-case thresholds
derived from the tuned behaviour; a change that weakens any case's
interference signal or pBox's mitigation fails here before the full
benchmarks run.  Thresholds are deliberately below the measured values
(roughly 2/3) to leave room for benign drift.
"""

import pytest

from repro.cases import Solution

# case id -> (minimum interference level p, minimum reduction ratio r)
EXPECTATIONS = {
    "c1": (10.0, 0.70),
    "c2": (0.20, -0.20),   # the paper's mildest case; mitigation marginal
    "c3": (2.0, 0.60),
    "c4": (5.0, 0.65),
    "c5": (2.0, 0.20),
    "c6": (6.0, 0.50),
    "c7": (150.0, 0.80),
    "c8": (15.0, 0.70),
    "c9": (40.0, 0.80),
    "c10": (4.0, 0.65),
    "c11": (15.0, 0.40),
    "c12": (40.0, 0.80),
    "c13": (10.0, 0.70),
    "c14": (20.0, 0.75),
    "c15": (0.40, 0.10),
    "c16": (0.40, -0.50),  # unmitigated by design (overhead dominates)
}


#: Evaluation window per case.  3 s (1 s warmup + 2 s measurement)
#: clears every floor with >=1.7x margin except c5 and c11, whose
#: penalty adaptation needs the longer window to converge.
DURATIONS_S = {"c5": 4, "c11": 4}


@pytest.fixture(scope="module")
def evaluations(evaluation_cache):
    return {
        case_id: evaluation_cache.evaluate(
            case_id, solutions=[Solution.PBOX],
            duration_s=DURATIONS_S.get(case_id, 3))
        for case_id in EXPECTATIONS
    }


@pytest.mark.parametrize("case_id", sorted(EXPECTATIONS))
def test_case_interference_floor(case_id, evaluations):
    min_p, _min_r = EXPECTATIONS[case_id]
    assert evaluations[case_id].interference_level >= min_p


@pytest.mark.parametrize("case_id", sorted(EXPECTATIONS))
def test_case_mitigation_floor(case_id, evaluations):
    _min_p, min_r = EXPECTATIONS[case_id]
    assert evaluations[case_id].reduction_ratio(Solution.PBOX) >= min_r


def test_c16_mitigation_stays_bounded(evaluations):
    """c16 must not be strongly mitigated -- the paper's one failure."""
    assert evaluations["c16"].reduction_ratio(Solution.PBOX) <= 0.4


def test_aggregate_headline(evaluations):
    """15/16 mitigated with a high mean ratio even at short durations."""
    ratios = {cid: ev.reduction_ratio(Solution.PBOX)
              for cid, ev in evaluations.items()}
    mitigated = [cid for cid, ratio in ratios.items() if ratio > 0.05]
    assert len(mitigated) >= 14
    mean = sum(ratios[cid] for cid in mitigated) / len(mitigated)
    assert mean >= 0.6
