"""Unit tests for the deterministic fault-injection harness.

Covers the contracts ``repro.faults`` documents:

- **plan determinism** — a fault plan is a pure function of
  (kinds, seed, window), derived with SHA-256, never ``hash()``;
- **kernel containment** — ``Kernel.kill_thread`` retires a thread in
  any state, and the robust-futex purge hands leaked holds to the
  primitives so waiters recover (no dangling owner, no deadlock);
- **injection** — every fault kind fires against a live case run and
  the invariant suite stays silent (self-healing absorbs the fault);
- **invariants** — each checker actually trips when its property is
  violated, and violations carry a minimized repro spec.
"""

import pytest

from repro.cases import Solution, get_case, run_case
from repro.faults import (
    DEFAULT_CHAOS_FAULTS,
    FAULT_KINDS,
    ChaosHarness,
    FaultPlan,
    FaultSpec,
    InvariantSuite,
    chaos_spec,
)
from repro.faults.plan import derive
from repro.runner import execute_spec
from repro.sim import (
    Compute,
    FutexWait,
    Kernel,
    Mutex,
    Sleep,
    ThreadState,
)
from repro.sim.kernel import IdleWatchdog

#: Short simulated duration: long enough to clear the cases' 1 s warmup.
DURATION_S = 1.5


# ---------------------------------------------------------------------------
# Fault plans


def test_plan_is_deterministic_and_seed_sensitive():
    first = FaultPlan.generate(FAULT_KINDS, seed=7, start_us=1_000_000,
                               end_us=2_000_000)
    again = FaultPlan.generate(FAULT_KINDS, seed=7, start_us=1_000_000,
                               end_us=2_000_000)
    other = FaultPlan.generate(FAULT_KINDS, seed=8, start_us=1_000_000,
                               end_us=2_000_000)
    assert first.to_dict() == again.to_dict()
    assert first.to_dict() != other.to_dict()
    # Round-trips through the JSON encoding.
    assert FaultPlan.from_dict(first.to_dict()).to_dict() == first.to_dict()


def test_plan_respects_window_and_counts():
    plan = FaultPlan.generate(["stall", "crash"], seed=1,
                              start_us=500_000, end_us=900_000,
                              count_per_kind=3)
    assert len(plan) == 6
    for spec in plan:
        assert 500_000 <= spec.at_us <= 900_000
    # Sorted by time: the injector arms timers in order.
    times = [spec.at_us for spec in plan]
    assert times == sorted(times)


def test_plan_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultPlan.generate(["stall", "typo"], seed=1,
                           start_us=0, end_us=1_000)
    with pytest.raises(ValueError):
        FaultSpec("typo", 1_000)


def test_derive_is_stable_and_in_range():
    assert derive("x", 0, 9) == derive("x", 0, 9)
    values = {derive("label:%d" % i, 10, 20) for i in range(50)}
    assert values <= set(range(10, 21))
    with pytest.raises(ValueError):
        derive("x", 5, 4)


# ---------------------------------------------------------------------------
# Kernel containment: kill_thread and robust-futex recovery


def test_kill_thread_while_blocked_and_sleeping():
    kernel = Kernel(cores=2)

    def blocked():
        yield FutexWait(object())

    def sleeping():
        yield Sleep(us=10_000_000)

    victim_a = kernel.spawn(blocked)
    victim_b = kernel.spawn(sleeping)
    kernel.post(5_000, lambda: kernel.kill_thread(victim_a))
    kernel.post(5_000, lambda: kernel.kill_thread(victim_b))
    kernel.run(until_us=50_000)
    assert not victim_a.alive and not victim_b.alive
    assert kernel.stats["crashes"] == 2
    assert kernel.futexes.waiting_count() == 0


def test_kill_thread_while_runnable():
    kernel = Kernel(cores=1)

    def spinner():
        while True:
            yield Compute(us=1_000)

    victim = kernel.spawn(spinner)
    kernel.post(5_000, lambda: kernel.kill_thread(victim))
    kernel.run(until_us=50_000)
    assert not victim.alive
    assert victim.state is ThreadState.EXITED


def test_killing_a_holder_unblocks_waiters():
    """Regression: owner dies holding a lock, waiters must recover."""
    kernel = Kernel(cores=2)
    lock = Mutex(kernel, name="held-to-death")
    events = []
    kernel.trace.subscribe("futex.owner_exit",
                           lambda name, t, fields: events.append(fields))

    def holder():
        yield from lock.acquire()
        yield Sleep(us=10_000_000)  # never releases

    def waiter():
        yield from lock.acquire()
        events.append("waiter-acquired")
        lock.release()

    victim = kernel.spawn(holder)
    kernel.spawn(waiter)
    kernel.post(5_000, lambda: kernel.kill_thread(victim))
    kernel.run(until_us=50_000)
    assert "waiter-acquired" in events
    # The robust-futex purge deregistered the dead holder...
    assert victim not in kernel.futexes.all_owner_threads()
    # ...and announced the leak on the tracepoint bus.
    assert any(isinstance(e, dict) and e.get("holds") for e in events)


def test_watchdog_repairs_a_lost_wakeup():
    kernel = Kernel(cores=2)
    key = object()
    log = []

    def waiter():
        yield FutexWait(key)
        log.append("woken")

    def waker():
        yield Sleep(us=2_000)
        yield Compute(us=1_000)
        kernel.futex_wake(key, 1)

    def drop_one(_key, _n):
        kernel.wake_filter = None  # one-shot, like the real fault
        return False

    kernel.spawn(waiter)
    kernel.spawn(waker)
    kernel.wake_filter = drop_one
    watchdog = IdleWatchdog(kernel, period_us=10_000)
    watchdog.arm(5_000_000)
    kernel.run(until_us=5_000_000)
    assert "woken" in log
    stats = watchdog.stats()
    assert stats["recovered_wakes"] >= 1
    assert stats["deadlocks"] == 0


# ---------------------------------------------------------------------------
# End-to-end injection: every fault kind against a live case


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_each_fault_kind_is_absorbed(kind):
    harness = ChaosHarness([kind], seed=3, case_id="c1")
    run = run_case(get_case("c1"), Solution.PBOX, seed=3,
                   duration_s=DURATION_S, observer=harness.observer)
    summary = harness.finish()
    assert summary["violations"] == []
    assert run.victim_mean_us > 0
    # The plan existed and was JSON-safe.
    assert summary["plan"]["specs"]
    assert isinstance(summary["fired"], list)


def test_penalty_misfire_exercises_the_clamp():
    harness = ChaosHarness(["penalty_misfire"], seed=3, case_id="c1")
    run_case(get_case("c1"), Solution.PBOX, seed=3,
             duration_s=DURATION_S, observer=harness.observer)
    summary = harness.finish()
    assert summary["violations"] == []
    # The 20 s misfire must have been clamped or reverted, never served.
    healed = (summary["heal"]["penalty_clamped"]
              + summary["heal"]["penalty_reverts"])
    assert healed >= 1


def test_chaos_run_is_bit_reproducible():
    spec = chaos_spec("c1", "crash", seed=5, duration_s=DURATION_S).to_dict()
    first = execute_spec(spec)
    second = execute_spec(spec)
    assert first == second
    assert first["chaos"]["crashes"] >= 1
    assert first["chaos"]["violations"] == []


def test_default_chaos_cocktail_is_valid():
    assert set(DEFAULT_CHAOS_FAULTS) <= set(FAULT_KINDS)


# ---------------------------------------------------------------------------
# Invariant checkers trip when their property is actually violated


def _attached_suite():
    kernel = Kernel(cores=1)
    suite = InvariantSuite(penalty_cap_us=1_000, starvation_us=1_000)
    suite.attach(kernel)
    return kernel, suite


def test_penalty_bounded_checker_trips():
    kernel, suite = _attached_suite()
    tp = kernel.trace.point("pbox.penalty")
    kernel.trace.subscribe("pbox.penalty", lambda *a: None)
    tp.fire(10, delay_us=999)
    assert suite.violations == []
    tp.fire(20, delay_us=5_000)
    assert [v.name for v in suite.violations] == ["penalty-bounded"]


def test_time_monotonic_checker_trips():
    kernel, suite = _attached_suite()
    tp = kernel.trace.point("pbox.penalty")
    kernel.trace.subscribe("pbox.penalty", lambda *a: None)
    tp.fire(100, delay_us=1)
    tp.fire(50, delay_us=1)
    assert "time-monotonic" in [v.name for v in suite.violations]


def test_time_conservation_checker_trips():
    kernel, suite = _attached_suite()
    violations = suite.finish(until_us=1_000_000)  # clock never advanced
    assert "time-conservation" in [v.name for v in violations]


def test_dangling_owner_checker_trips():
    kernel, suite = _attached_suite()

    def holder():
        yield Compute(us=1)

    thread = kernel.spawn(holder)
    kernel.run(until_us=0)
    key = object()
    kernel.futexes.add_owner(key, thread)  # behind the purge's back
    thread.state = ThreadState.EXITED
    violations = suite.finish(until_us=0)
    assert "no-dangling-owner" in [v.name for v in violations]


def test_starved_waiter_checker_trips():
    kernel = Kernel(cores=2)
    suite = InvariantSuite(starvation_us=1_000)
    suite.attach(kernel)
    lock = Mutex(kernel, name="starver")

    def waiter():
        # Parks on a lock-like key that nobody holds and nobody will
        # ever wake: exactly the stranding the checker exists for.
        yield FutexWait(lock)

    kernel.spawn(waiter)
    kernel.run(until_us=100_000)
    violations = suite.finish(until_us=100_000)
    assert "no-starved-waiter" in [v.name for v in violations]


def test_deadlock_verdict_records_violation():
    kernel, suite = _attached_suite()
    class FakeThread:
        name = "stuck"
    suite.on_deadlock([FakeThread()])
    assert [v.name for v in suite.violations] == ["no-deadlock"]


def test_violations_carry_minimized_repro():
    harness = ChaosHarness(["stall"], seed=9, case_id="c2")
    run_case(get_case("c2"), Solution.PBOX, seed=9,
             duration_s=DURATION_S, observer=harness.observer)
    # Force a violation post-hoc so _decorate runs.
    harness.suite.record("synthetic", 1_234_567, "forced for the test")
    summary = harness.finish()
    entry = summary["violations"][0]
    assert entry["repro"]["case"] == "c2"
    assert entry["repro"]["seed"] == 9
    assert entry["repro"]["faults"] == "stall"
