"""Property-based tests (hypothesis) for core invariants."""

from hypothesis import given, settings, strategies as st

from repro.analyzer.cfg import CFG, dominates, dominators, natural_loops
from repro.analyzer.parser import parse_module
from repro.core import AdaptivePenalty, IsolationRule
from repro.core.pbox import PBox
from repro.sim import Compute, Kernel, Mutex, Semaphore, Sleep
from repro.sim.rng import RngStream
from repro.workloads import percentile, reduction_ratio

SETTINGS = settings(max_examples=30, deadline=None)


# ---------------------------------------------------------------------------
# Simulator invariants
# ---------------------------------------------------------------------------

@SETTINGS
@given(
    st.lists(
        st.tuples(st.integers(0, 2_000), st.integers(0, 2_000)),
        min_size=1, max_size=6,
    ),
    st.integers(1, 4),
)
def test_mutex_exclusion_under_random_schedules(profiles, cores):
    """No two threads are ever inside the mutex at once."""
    kernel = Kernel(cores=cores)
    mutex = Mutex(kernel)
    state = {"inside": 0, "violations": 0}

    def worker(pre_us, hold_us):
        def body():
            if pre_us:
                yield Sleep(us=pre_us)
            yield from mutex.acquire()
            state["inside"] += 1
            if state["inside"] > 1:
                state["violations"] += 1
            if hold_us:
                yield Compute(us=hold_us)
            state["inside"] -= 1
            mutex.release()
        return body

    for pre, hold in profiles:
        kernel.spawn(worker(pre, hold))
    kernel.run(until_us=10_000_000)
    assert state["violations"] == 0
    assert not mutex.locked


@SETTINGS
@given(
    st.integers(1, 4),
    st.lists(st.integers(0, 1_000), min_size=1, max_size=8),
)
def test_semaphore_never_oversubscribed(units, holds):
    kernel = Kernel(cores=4)
    sem = Semaphore(kernel, units=units)
    state = {"inside": 0, "max": 0}

    def worker(hold_us):
        def body():
            yield from sem.acquire()
            state["inside"] += 1
            state["max"] = max(state["max"], state["inside"])
            yield Compute(us=hold_us)
            state["inside"] -= 1
            sem.release()
        return body

    for hold in holds:
        kernel.spawn(worker(hold))
    kernel.run(until_us=10_000_000)
    assert state["max"] <= units
    assert sem.available == units


@SETTINGS
@given(st.lists(st.integers(1, 5_000), min_size=1, max_size=8),
       st.integers(1, 4))
def test_total_cpu_time_conserved(computes, cores):
    """Sum of per-thread CPU equals work submitted; makespan bounds hold."""
    kernel = Kernel(cores=cores)

    def one_compute(us):
        def body():
            yield Compute(us=us)
        return body

    threads = [kernel.spawn(one_compute(us)) for us in computes]
    kernel.run()
    total = sum(t.cpu_time_us for t in threads)
    assert total == sum(computes)
    # Makespan at least the critical path and at most serial execution.
    assert kernel.now_us >= max(computes)
    assert kernel.now_us <= sum(computes)


@SETTINGS
@given(st.integers(0, 2**31), st.text(min_size=1, max_size=8))
def test_rng_streams_reproducible(seed, name):
    a = RngStream(seed, name)
    b = RngStream(seed, name)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


@SETTINGS
@given(st.integers(2, 200), st.floats(0.5, 2.0))
def test_zipf_draws_in_range(n, skew):
    rng = RngStream(1, "zipf-prop")
    for _ in range(20):
        assert 0 <= rng.zipf_index(n, skew) < n


# ---------------------------------------------------------------------------
# Statistics invariants
# ---------------------------------------------------------------------------

@SETTINGS
@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=200),
       st.integers(0, 100))
def test_percentile_bounded_by_extremes(values, p):
    result = percentile(values, p)
    assert min(values) <= result <= max(values)


@SETTINGS
@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=100))
def test_percentile_monotonic(values):
    previous = None
    for p in (0, 25, 50, 75, 95, 100):
        current = percentile(values, p)
        if previous is not None:
            assert current >= previous
        previous = current


@SETTINGS
@given(st.floats(1, 10**6), st.floats(1, 10**6))
def test_reduction_ratio_endpoints(to_us, delta):
    ti_us = to_us + delta
    # A solution equal to Ti removes nothing; equal to To removes all.
    assert abs(reduction_ratio(ti_us, ti_us, to_us)) < 1e-9
    assert abs(reduction_ratio(ti_us, to_us, to_us) - 1.0) < 1e-9


# ---------------------------------------------------------------------------
# pBox math invariants
# ---------------------------------------------------------------------------

@SETTINGS
@given(st.integers(0, 10**6), st.integers(1, 10**6))
def test_interference_level_non_negative(td, te):
    pbox = PBox(1, IsolationRule(50))
    pbox.activity_start_us = 0
    pbox.defer_time_us = td
    level = pbox.interference_level(te)
    assert level >= 0
    if td >= te:
        assert level == float("inf")


@SETTINGS
@given(
    st.integers(0, 10**7),   # victim defer
    st.integers(0, 10**7),   # victim total defer
    st.integers(1, 10**8),   # victim total exec
    st.integers(1, 10**7),   # now
)
def test_adaptive_penalty_always_clamped(defer_us, total_defer, total_exec, now):
    engine = AdaptivePenalty(min_penalty_us=1_000, max_penalty_us=100_000)
    rule = IsolationRule(50)
    noisy, victim = PBox(1, rule), PBox(2, rule)
    noisy.activity_start_us = 0
    victim.activity_start_us = 0
    victim.defer_time_us = defer_us
    victim.total_defer_us = total_defer
    victim.total_exec_us = total_exec
    for _ in range(4):
        decision = engine.decide(now, noisy, victim, "res",
                                 victim_defer_us=defer_us)
        assert 1_000 <= decision.length_us <= 100_000


@SETTINGS
@given(st.integers(1, 1000))
def test_isolation_rule_goal_spaces_consistent(level):
    rule = IsolationRule(isolation_level=level)
    goal = rule.goal
    s = rule.goal_defer_ratio
    # s/(1-s) must recover the goal.
    assert abs(s / (1 - s) - goal) < 1e-9


# ---------------------------------------------------------------------------
# Analyzer invariants
# ---------------------------------------------------------------------------

_loop_counts = st.integers(0, 3)


@SETTINGS
@given(_loop_counts, _loop_counts, st.booleans())
def test_generated_minic_always_parses(n_while, n_if, with_wait):
    parts = ["int shared_g;"]
    body = ["    shared_g = shared_g + x;"]
    for i in range(n_while):
        wait = "            usleep(10);" if with_wait else "            work(x);"
        body.append(
            "    while (shared_g < x) {\n%s\n"
            "        shared_g = shared_g + 1;\n    }" % wait
        )
    for i in range(n_if):
        body.append(
            "    if (shared_g < x) {\n        shared_g = 0;\n    }"
        )
    parts.append("void f(int x) {\n%s\n}" % "\n".join(body))
    parts.append("void g(int x) { shared_g = shared_g - x; }")
    module = parse_module("\n".join(parts))
    function = module.functions["f"]
    cfg = CFG(function)
    loops = natural_loops(cfg)
    assert len(loops) == n_while
    idom = dominators(cfg)
    for label in idom:
        assert dominates(idom, function.entry_label, label)
