"""Property tests for the seeded trace generator (repro.workloads.traces).

The trace contract the FaaS tenants rely on, pinned under hypothesis:

- **determinism**: a trace is a pure function of ``(seed, tenant,
  profile, horizon)`` -- two registries built from the same root seed
  produce byte-identical event lists, and generating *other* tenants'
  traces first never perturbs the result (named-stream independence);
- **strict monotonicity**: every interarrival gap is at least one
  microsecond, so arrival times strictly increase and stay inside the
  horizon;
- **duration support**: every sampled execution duration lies inside
  the vendored histogram's ``[low, high)`` support.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import RngRegistry
from repro.workloads.traces import (
    DURATION_BUCKETS,
    TRACE_PROFILES,
    duration_support,
    generate_trace,
    sample_duration,
    trace_stream_name,
)

_PROFILES = st.sampled_from(sorted(TRACE_PROFILES))
_SEEDS = st.integers(0, 2 ** 31 - 1)
_TENANTS = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
    max_size=12)
_HORIZONS = st.integers(1_000, 2_000_000)


@settings(max_examples=60, deadline=None)
@given(seed=_SEEDS, tenant=_TENANTS, profile=_PROFILES,
       horizon=_HORIZONS)
def test_same_seed_tenant_is_byte_identical(seed, tenant, profile,
                                            horizon):
    """(seed, tenant, profile, horizon) fully determines the trace."""
    first = generate_trace(RngRegistry(seed), tenant, profile,
                           horizon_us=horizon)
    second = generate_trace(RngRegistry(seed), tenant, profile,
                            horizon_us=horizon)
    assert first == second


@settings(max_examples=40, deadline=None)
@given(seed=_SEEDS, tenant=_TENANTS, profile=_PROFILES)
def test_other_streams_never_perturb_a_trace(seed, tenant, profile):
    """Draining unrelated streams first leaves the trace unchanged.

    This is the named-stream independence property that lets a new
    trace consumer land without regenerating anything: every trace
    draws only from ``trace.<profile>.<tenant>``.
    """
    clean = generate_trace(RngRegistry(seed), tenant, profile,
                           horizon_us=500_000)
    dirty_registry = RngRegistry(seed)
    # Exhaust sibling tenants and unrelated streams first.
    generate_trace(dirty_registry, tenant + "-sibling", profile,
                   horizon_us=500_000)
    dirty_registry.stream("victim-think").random()
    dirty = generate_trace(dirty_registry, tenant, profile,
                           horizon_us=500_000)
    assert clean == dirty


@settings(max_examples=60, deadline=None)
@given(seed=_SEEDS, tenant=_TENANTS, profile=_PROFILES,
       horizon=_HORIZONS)
def test_arrivals_strictly_increase_inside_horizon(seed, tenant, profile,
                                                   horizon):
    events = generate_trace(RngRegistry(seed), tenant, profile,
                            horizon_us=horizon)
    previous = 0
    for event in events:
        assert event.at_us > previous, (
            "interarrival gap must be strictly positive")
        previous = event.at_us
    assert all(event.at_us < horizon for event in events)
    assert [event.index for event in events] == list(range(len(events)))


@settings(max_examples=60, deadline=None)
@given(seed=_SEEDS, tenant=_TENANTS, profile=_PROFILES)
def test_durations_stay_inside_vendored_support(seed, tenant, profile):
    low, high = duration_support()
    events = generate_trace(RngRegistry(seed), tenant, profile,
                            horizon_us=300_000)
    for event in events:
        assert low <= event.duration_us < high


@settings(max_examples=40, deadline=None)
@given(seed=_SEEDS, draws=st.integers(1, 200))
def test_sample_duration_support(seed, draws):
    """The standalone sampler honors the same histogram support."""
    low, high = duration_support()
    stream = RngRegistry(seed).stream("duration-only")
    for _ in range(draws):
        assert low <= sample_duration(stream) < high


def test_profile_rates_order_event_counts():
    """Hotter profiles produce more invocations over the same horizon."""
    registry = RngRegistry(1)
    counts = {
        profile: len(generate_trace(registry, "t", profile,
                                    horizon_us=1_000_000))
        for profile in TRACE_PROFILES
    }
    assert counts["burst"] > counts["popular"] > counts["periodic"] \
        > counts["rare"]


def test_histogram_is_well_formed():
    """The vendored table is a valid CDF with contiguous buckets."""
    cumulative = 0.0
    previous_high = None
    for prob, low, high in DURATION_BUCKETS:
        assert prob > cumulative
        cumulative = prob
        assert low < high
        if previous_high is not None:
            assert low == previous_high
        previous_high = high
    assert cumulative == 1.0


def test_unknown_profile_raises():
    with pytest.raises(ValueError):
        generate_trace(RngRegistry(1), "t", "no-such-profile")


def test_stream_name_shape():
    assert trace_stream_name("popular", "tenant-a") == \
        "trace.popular.tenant-a"
