"""Unit tests for Algorithm 2 and the Table 5 corpora."""

from repro.analyzer import Analyzer, parse_module
from repro.analyzer.corpus import CORPUS_SPECS, analyze_corpus, table5
from repro.analyzer.shared import functions_accessing, shared_variables


def analyze(source):
    return Analyzer().analyze(parse_module(source))


def test_direct_wait_in_shared_loop_detected():
    locations = analyze("""
        int queue_len;
        void producer(int n) { queue_len = queue_len + n; }
        void consumer(int n) {
            while (queue_len < n) {
                usleep(100);
            }
        }
    """)
    assert len(locations) == 1
    assert locations[0].function == "consumer"
    assert locations[0].shared_vars == ("queue_len",)


def test_wait_outside_loop_not_detected():
    locations = analyze("""
        int g;
        void other(int n) { g = g + n; }
        void f(int n) {
            if (g < n) {
                usleep(100);
            }
        }
    """)
    assert locations == []


def test_self_waiting_loop_not_detected():
    """A retry loop over a local variable is self-waiting (skipped)."""
    locations = analyze("""
        void f(int n) {
            int retries = 0;
            while (retries < n) {
                usleep(100);
                retries = retries + 1;
            }
        }
    """)
    assert locations == []


def test_private_global_not_detected():
    """A global accessed by a single function is not cross-activity."""
    locations = analyze("""
        int private_state;
        void f(int n) {
            while (private_state < n) {
                usleep(100);
            }
        }
    """)
    assert locations == []


def test_wrapper_is_resolved():
    locations = analyze("""
        int g;
        void producer(int n) { g = g + n; }
        void my_wait(int us) { usleep(us); }
        void consumer(int n) {
            while (g < n) {
                my_wait(100);
            }
        }
    """)
    assert len(locations) == 1
    assert locations[0].callee == "my_wait"
    assert locations[0].wait_func == "usleep"


def test_conditional_wait_is_not_a_wrapper():
    """A function that only waits on some paths is not a wrapper."""
    module = parse_module("""
        void maybe_wait(int us) {
            if (us < 10) {
                usleep(us);
            }
        }
    """)
    assert Analyzer().find_wrappers(module) == {}


def test_deep_call_chain_is_missed():
    """Two-level wrapping defeats the direct-wrapper check (Section 6.7)."""
    locations = analyze("""
        int g;
        void producer(int n) { g = g + n; }
        void inner(int us) { usleep(us); }
        void outer(int us) { inner(us); }
        void consumer(int n) {
            while (g < n) {
                outer(100);
            }
        }
    """)
    assert locations == []


def test_funcret_condition_is_missed():
    """Loop conditions from call return values are not traced (6.7)."""
    locations = analyze("""
        int g;
        void producer(int n) { g = g + n; }
        void consumer(int n) {
            int w = g;
            while (check_state()) {
                usleep(100);
            }
        }
    """)
    assert locations == []


def test_figure9_detected_with_shared_counter():
    locations = analyze("""
        int n_active;
        void exiter(int n) { n_active = n_active - 1; }
        void enterer(int limit) {
            for (;;) {
                if (n_active < limit) {
                    n_active = n_active + 1;
                    return;
                }
                os_thread_sleep(100);
            }
        }
    """)
    assert len(locations) == 1
    assert "n_active" in locations[0].shared_vars


def test_shared_variables_analysis():
    module = parse_module("""
        int a, b;
        void f(int x) { a = a + x; b = b + x; }
        void g(int x) { a = a - x; }
    """)
    assert shared_variables(module) == {"a"}
    assert functions_accessing(module, "a") == ["f", "g"]


def test_corpus_matches_table5():
    expected = {
        "mysql": (57, 40),
        "postgresql": (40, 44),
        "apache": (12, 8),
        "varnish": (16, 12),
        "memcached": (14, 12),
    }
    for row in table5():
        manual, detected = expected[row["app"]]
        assert row["manual"] == manual
        assert row["detected"] == detected


def test_corpus_specs_consistent():
    for app, spec in CORPUS_SPECS.items():
        row = analyze_corpus(app)
        assert row["detected"] == spec.detectable_events
