"""Unit tests for the user-level pBox runtime library (Section 5)."""

from repro.core import (
    BindFlag,
    IsolationRule,
    OperationCosts,
    PBoxManager,
    PBoxRuntime,
    StateEvent,
)
from repro.sim import Compute, Kernel, Now, Sleep


def make_runtime(**kwargs):
    kernel = Kernel(cores=2)
    manager = PBoxManager(kernel)
    runtime = PBoxRuntime(manager, costs=OperationCosts.zero(), **kwargs)
    return kernel, manager, runtime


def test_create_binds_current_thread():
    kernel, manager, runtime = make_runtime()
    rule = IsolationRule(isolation_level=50)
    out = {}

    def body():
        psid = runtime.create_pbox(rule)
        out["psid"] = psid
        out["current"] = runtime.get_current_pbox()
        yield Compute(us=10)

    kernel.spawn(body)
    kernel.run()
    assert out["psid"] == out["current"] > 0


def test_hold_unhold_matching_saves_syscalls():
    kernel, manager, runtime = make_runtime()
    rule = IsolationRule(isolation_level=50)

    def body():
        runtime.create_pbox(rule)
        runtime.activate_pbox()
        runtime.update_pbox("res", StateEvent.HOLD)
        runtime.update_pbox("res", StateEvent.HOLD)      # redundant
        runtime.update_pbox("res", StateEvent.UNHOLD)
        runtime.update_pbox("res", StateEvent.UNHOLD)    # redundant
        runtime.freeze_pbox()
        yield Compute(us=10)

    kernel.spawn(body)
    kernel.run()
    assert runtime.stats["update_calls"] == 4
    assert runtime.stats["update_syscalls"] == 2
    assert runtime.stats["saved_syscalls"] == 2
    assert runtime.syscall_savings() == 0.5


def test_update_outside_active_activity_is_not_traced():
    kernel, manager, runtime = make_runtime()
    rule = IsolationRule(isolation_level=50)
    out = {}

    def body():
        psid = runtime.create_pbox(rule)
        # Not activated: PREPARE/ENTER must not accumulate defer.
        runtime.update_pbox("res", StateEvent.PREPARE)
        yield Sleep(us=1_000)
        runtime.update_pbox("res", StateEvent.ENTER)
        out["defer"] = manager.get(psid).defer_time_us
        yield Compute(us=10)

    kernel.spawn(body)
    kernel.run()
    assert out["defer"] == 0


def test_call_filter_drops_updates():
    kernel, manager, runtime = make_runtime(
        call_filter=lambda key, event: False
    )
    rule = IsolationRule(isolation_level=50)

    def body():
        runtime.create_pbox(rule)
        runtime.activate_pbox()
        runtime.update_pbox("res", StateEvent.HOLD)
        yield Compute(us=10)

    kernel.spawn(body)
    kernel.run()
    assert runtime.stats["update_syscalls"] == 0
    assert manager.stats["events"] == 0


def test_disabled_runtime_is_noop():
    kernel, manager, runtime = make_runtime(enabled=False)
    rule = IsolationRule(isolation_level=50)
    out = {}

    def body():
        out["psid"] = runtime.create_pbox(rule)
        runtime.update_pbox("res", StateEvent.HOLD)
        yield Compute(us=10)

    kernel.spawn(body)
    kernel.run()
    assert out["psid"] == -1
    assert manager.pboxes() == []


def test_lazy_unbind_rebind_same_pbox_skips_syscalls():
    kernel, manager, runtime = make_runtime()
    rule = IsolationRule(isolation_level=50)
    out = {}

    def body():
        psid = runtime.create_pbox(rule)
        runtime.activate_pbox()
        runtime.unbind_pbox("conn-1", BindFlag.SHARED_THREAD)
        # Tracing is paused while detached.
        runtime.update_pbox("res", StateEvent.PREPARE)
        rebound = runtime.bind_pbox("conn-1", BindFlag.SHARED_THREAD)
        out["rebound"] = rebound
        out["psid"] = psid
        yield Compute(us=10)

    kernel.spawn(body)
    kernel.run()
    assert out["rebound"] == out["psid"]
    assert runtime.stats["lazy_rebinds"] == 1
    assert manager.stats["events"] == 0  # the detached PREPARE was dropped


def test_bind_transfers_pbox_across_threads():
    kernel, manager, runtime = make_runtime()
    rule = IsolationRule(isolation_level=50)
    out = {}

    def producer():
        psid = runtime.create_pbox(rule)
        out["psid"] = psid
        runtime.unbind_pbox("conn-9", BindFlag.SHARED_THREAD)
        yield Compute(us=10)

    def worker():
        yield Sleep(us=1_000)
        psid = runtime.bind_pbox("conn-9", BindFlag.SHARED_THREAD)
        out["bound"] = psid
        out["current"] = runtime.get_current_pbox()
        yield Compute(us=10)

    kernel.spawn(producer)
    kernel.spawn(worker)
    kernel.run()
    assert out["bound"] == out["psid"]
    assert out["current"] == out["psid"]
    assert runtime.stats["lazy_rebinds"] == 0
    pbox = manager.get(out["psid"])
    assert pbox.shared_thread is True


def test_bind_unknown_key_returns_minus_one():
    kernel, manager, runtime = make_runtime()
    out = {}

    def body():
        out["psid"] = runtime.bind_pbox("nope")
        yield Compute(us=10)

    kernel.spawn(body)
    kernel.run()
    assert out["psid"] == -1


def test_operation_costs_charged_to_thread():
    kernel = Kernel(cores=1)
    manager = PBoxManager(kernel)
    # 1 us per create so the charge is visible in integer microseconds.
    costs = OperationCosts(create_ns=1_000, activate_ns=0, freeze_ns=0,
                           release_ns=0, bind_ns=0, unbind_ns=0,
                           update_ns=0, update_contended_ns=0, library_ns=0)
    runtime = PBoxRuntime(manager, costs=costs)
    rule = IsolationRule(isolation_level=50)
    out = {}

    def body():
        runtime.create_pbox(rule)
        yield Sleep(us=100)
        out["t"] = yield Now()

    kernel.spawn(body)
    kernel.run()
    # 1 us of charged compute + 100 us sleep.
    assert out["t"] == 101


def test_fractional_costs_accumulate():
    kernel = Kernel(cores=1)
    manager = PBoxManager(kernel)
    costs = OperationCosts(create_ns=0, activate_ns=0, freeze_ns=0,
                           release_ns=0, bind_ns=0, unbind_ns=0,
                           update_ns=400, update_contended_ns=400,
                           library_ns=0)
    runtime = PBoxRuntime(manager, costs=costs)
    rule = IsolationRule(isolation_level=50)
    out = {}

    def body():
        runtime.create_pbox(rule)
        runtime.activate_pbox()
        # 5 x 400 ns = 2 us of charged overhead.
        for i in range(5):
            runtime.update_pbox("k%d" % i, StateEvent.HOLD)
        yield Sleep(us=100)
        out["t"] = yield Now()

    kernel.spawn(body)
    kernel.run()
    assert out["t"] == 102
