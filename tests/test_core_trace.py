"""Unit tests for the pBox tracer (Section 7 debugging aid)."""

from repro.core import IsolationRule, PBoxManager, StateEvent
from repro.core.trace import PBoxTracer
from repro.sim import Kernel, Sleep


def run_traced_scenario(record_events=False):
    kernel = Kernel(cores=4)
    tracer = PBoxTracer(record_events=record_events)
    manager = PBoxManager(kernel, tracer=tracer)
    rule = IsolationRule(isolation_level=50)

    def noisy():
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.HOLD)
        yield Sleep(us=50_000)
        manager.update(pbox, "res", StateEvent.UNHOLD)
        manager.freeze(pbox)
        yield Sleep(us=1_000)

    def victim():
        yield Sleep(us=1_000)
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.PREPARE)
        yield Sleep(us=60_000)
        manager.update(pbox, "res", StateEvent.ENTER)
        manager.freeze(pbox)

    kernel.spawn(noisy, name="noisy")
    kernel.spawn(victim, name="victim")
    kernel.run(until_us=300_000)
    return tracer, manager


def test_tracer_counts_state_events():
    tracer, manager = run_traced_scenario()
    assert tracer.event_counts["hold"] == 1
    assert tracer.event_counts["unhold"] == 1
    assert tracer.event_counts["prepare"] == 1
    assert tracer.summary()["events"]["enter"] == 1


def test_tracer_records_detection_and_action():
    tracer, manager = run_traced_scenario()
    assert tracer.summary()["detections"] >= 1
    assert tracer.summary()["actions"] >= 1
    pairs = tracer.recurring_pairs()
    assert pairs[0][0] == (1, 2)  # noisy psid 1 deferred victim psid 2


def test_tracer_records_served_penalties():
    tracer, manager = run_traced_scenario()
    assert tracer.summary()["penalty_us"] > 0
    top = tracer.top_noisy_pboxes()
    assert top[0][0] == 1


def test_tracer_event_records_optional():
    lean, _ = run_traced_scenario(record_events=False)
    rich, _ = run_traced_scenario(record_events=True)
    lean_events = [r for r in lean.records if r.kind == "event"]
    rich_events = [r for r in rich.records if r.kind == "event"]
    assert lean_events == []
    assert len(rich_events) == 4


def test_tracer_ring_buffer_bounded():
    tracer = PBoxTracer(capacity=10, record_events=True)
    kernel = Kernel(cores=1)
    manager = PBoxManager(kernel, tracer=tracer)
    pbox = manager.create(IsolationRule(50))
    manager.activate(pbox)
    for i in range(50):
        manager.update(pbox, "k%d" % i, StateEvent.HOLD)
    assert len(tracer.records) == 10


def test_format_report_mentions_key_facts():
    tracer, _ = run_traced_scenario()
    report = tracer.format_report()
    assert "pBox trace report" in report
    assert "detections" in report
    assert "noisiest pBoxes" in report
    assert "res" in report  # the contended resource name
