"""Tests for the tracepoint bus: enable/disable semantics and kernel wiring."""

from repro.obs.tracepoints import CATALOG, Tracepoint, TracepointBus, key_label
from repro.sim import FutexWait, FutexWake, Kernel, Sleep


def test_tracepoint_disabled_by_default():
    tp = Tracepoint("x")
    assert tp.active is False
    assert not tp
    tp.fire(0, a=1)  # no subscribers: harmless


def test_subscribe_enables_unsubscribe_disables():
    tp = Tracepoint("x")
    seen = []

    def sub(name, t, fields):
        seen.append((name, t, fields))

    tp.subscribe(sub)
    assert tp.active is True
    tp.fire(5, a=1)
    assert seen == [("x", 5, {"a": 1})]
    tp.unsubscribe(sub)
    assert tp.active is False
    tp.fire(6, a=2)
    assert len(seen) == 1


def test_unsubscribe_keeps_active_while_others_remain():
    tp = Tracepoint("x")
    first = tp.subscribe(lambda *a: None)
    second = tp.subscribe(lambda *a: None)
    tp.unsubscribe(first)
    assert tp.active is True
    assert tp.subscriber_count == 1
    tp.unsubscribe(second)
    assert tp.active is False


def test_unsubscribe_unknown_fn_is_noop():
    tp = Tracepoint("x")
    tp.subscribe(lambda *a: None)
    tp.unsubscribe(lambda *a: None)  # never subscribed
    assert tp.active is True


def test_bus_preregisters_catalog():
    bus = TracepointBus()
    names = bus.names()
    for name, _desc in CATALOG:
        assert name in names
    assert not any(bus.enabled(name) for name in names)


def test_bus_point_is_get_or_create():
    bus = TracepointBus()
    custom = bus.point("my.custom")
    assert bus.point("my.custom") is custom
    assert bus.point("sched.switch") is bus.point("sched.switch")


def test_bus_subscribe_all_and_unsubscribe_all():
    bus = TracepointBus()
    hits = []

    def sub(name, t, fields):
        hits.append(name)

    bus.subscribe_all(sub)
    assert all(bus.enabled(name) for name in bus.names())
    bus.point("sched.switch").fire(0, tid=1)
    assert hits == ["sched.switch"]
    bus.unsubscribe_all(sub)
    assert not any(bus.enabled(name) for name in bus.names())


def test_key_label_handles_all_key_shapes():
    assert key_label(None) == "<none>"
    assert key_label("lock") == "lock"
    assert key_label(("a", "b")) == "(a, b)"
    assert key_label((None, ("x", "y"))) == "(<none>, (x, y))"

    class Named:
        name = "undo_log_latch"

    assert key_label(Named()) == "undo_log_latch"

    class EmptyName:
        name = ""

        def __str__(self):
            return "fallback"

    assert key_label(EmptyName()) == "fallback"
    assert key_label(42) == "42"

    class Bare:
        __slots__ = ()

    # No name, no custom str: the default repr would leak a memory
    # address, so the label degrades to the type name instead.
    assert key_label(Bare()) == "<Bare>"


def test_kernel_bus_inactive_run_records_nothing():
    kernel = Kernel(cores=1)

    def body():
        yield Sleep(us=10)

    kernel.spawn(body, name="t")
    kernel.run(until_us=1_000)
    assert not any(kernel.trace.enabled(n) for n in kernel.trace.names())


def test_two_thread_futex_handoff_tracepoint_sequence():
    """Kernel smoke test: the canonical blocking handoff fires the
    expected tracepoint sequence for the waiter, plus one futex.wake."""
    kernel = Kernel(cores=1)
    events = []

    def sub(name, t, fields):
        events.append((name, t, dict(fields)))

    for name in ("sched.enqueue", "sched.switch", "sched.switchout",
                 "futex.wait", "futex.wake", "sched.sleep"):
        kernel.trace.subscribe(name, sub)

    tids = {}

    def waiter():
        yield FutexWait("door")

    def opener():
        yield Sleep(us=100)
        yield FutexWake("door", n=1)

    tids["waiter"] = kernel.spawn(waiter, name="waiter").tid
    tids["opener"] = kernel.spawn(opener, name="opener").tid
    kernel.run(until_us=10_000)

    waiter_seq = [name for name, _t, fields in events
                  if fields.get("tid") == tids["waiter"]]
    # Runnable -> on CPU -> blocks on the futex -> woken -> on CPU again.
    assert waiter_seq == [
        "sched.enqueue", "sched.switch", "sched.switchout",
        "futex.wait",
        "sched.enqueue", "sched.switch", "sched.switchout",
    ]
    wakes = [(t, fields) for name, t, fields in events
             if name == "futex.wake"]
    assert len(wakes) == 1
    wake_time, wake_fields = wakes[0]
    assert wake_fields["key"] == "door"
    assert wake_fields["woken"] == [tids["waiter"]]
    assert wake_time >= 100  # after the opener's sleep

    wait_fields = [fields for name, _t, fields in events
                   if name == "futex.wait"][0]
    assert wait_fields["key"] == "door"
    assert wait_fields["waiters"] == 1


def test_throttle_tracepoints_fire_for_limited_cgroup():
    kernel = Kernel(cores=1)
    group = kernel.create_cgroup("limited", quota_us=1_000, period_us=10_000)
    events = []

    def sub(name, t, fields):
        events.append((name, fields))

    kernel.trace.subscribe("cgroup.throttle", sub)
    kernel.trace.subscribe("cgroup.unthrottle", sub)

    def spinner():
        from repro.sim import Compute
        for _ in range(100):
            yield Compute(us=500)

    thread = kernel.spawn(spinner, name="spinner", cgroup=group)
    kernel.run(until_us=50_000)
    throttles = [f for n, f in events if n == "cgroup.throttle"]
    unthrottles = [f for n, f in events if n == "cgroup.unthrottle"]
    assert throttles and throttles[0]["group"] == "limited"
    assert throttles[0]["tid"] == thread.tid
    assert unthrottles and thread.tid in unthrottles[0]["tids"]
