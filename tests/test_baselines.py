"""Unit tests for the four baseline solution policies."""

from repro.baselines import (
    CgroupPolicy,
    DarcPolicy,
    PartiesPolicy,
    RetroPolicy,
    SolutionPolicy,
)
from repro.baselines.base import RequestContext
from repro.sim import Compute, Kernel, Now, Sleep
from repro.sim.clock import seconds


def drive(policy_gen):
    """Exhaust a policy generator hook synchronously (no waits taken)."""
    items = list(policy_gen)
    return items


def test_null_policy_is_inert():
    kernel = Kernel(cores=2)
    policy = SolutionPolicy()
    policy.attach(kernel)
    assert policy.thread_options("g", "client") == {}
    policy.finalize({"g"})
    assert drive(policy.before_request(None, {})) == []
    policy.after_request(None, {}, 123)


def test_cgroup_policy_even_split():
    kernel = Kernel(cores=4)
    policy = CgroupPolicy()
    policy.attach(kernel)
    for group in ("a", "b"):
        options = policy.thread_options(group, "client")
        assert options["cgroup"].name == "cg:%s" % group
    policy.finalize({"a", "b"})
    quotas = policy.quotas()
    # 4 cores x 100 ms period split two ways = 200 ms each.
    assert quotas["a"] == quotas["b"] == 200_000


def test_cgroup_policy_throttles_over_quota_group():
    kernel = Kernel(cores=2)
    policy = CgroupPolicy()
    policy.attach(kernel)
    done = {}

    def hog():
        yield Compute(us=300_000)
        done["hog"] = yield Now()

    options_a = policy.thread_options("hogs", "client")
    options_b = policy.thread_options("idle", "client")
    kernel.spawn(hog, cgroup=options_a["cgroup"])
    policy.finalize({"hogs", "idle"})
    kernel.run(until_us=seconds(5))
    # 1 core's worth of quota per 100 ms period: 300 ms of compute
    # needs three periods.
    assert done["hog"] >= 290_000


def test_parties_shifts_quota_to_violating_group():
    kernel = Kernel(cores=2)
    policy = PartiesPolicy(slo_by_group={"victim": 1_000},
                           interval_us=100_000)
    policy.attach(kernel)
    victim_options = policy.thread_options("victim", "client")
    noisy_options = policy.thread_options("noisy", "client")
    policy.finalize({"victim", "noisy"})
    ctx = RequestContext("victim", "v")
    for _ in range(10):
        policy.after_request(ctx, {}, 10_000)  # way over SLO

    def idle():
        yield Sleep(us=500_000)

    kernel.spawn(idle)
    kernel.run(until_us=500_000)
    assert policy.adjustments >= 1
    assert victim_options["cgroup"].quota_us > noisy_options["cgroup"].quota_us


def test_parties_no_adjustment_when_slo_met():
    kernel = Kernel(cores=2)
    policy = PartiesPolicy(slo_by_group={"victim": 10_000},
                           interval_us=100_000)
    policy.attach(kernel)
    policy.thread_options("victim", "client")
    policy.thread_options("noisy", "client")
    policy.finalize({"victim", "noisy"})
    ctx = RequestContext("victim", "v")
    for _ in range(10):
        policy.after_request(ctx, {}, 1_000)

    def idle():
        yield Sleep(us=500_000)

    kernel.spawn(idle)
    kernel.run(until_us=500_000)
    assert policy.adjustments == 0


def test_retro_throttles_highest_load_workflow():
    kernel = Kernel(cores=2)
    policy = RetroPolicy(baseline_by_group={"victim": 1_000},
                         interval_us=100_000)
    policy.attach(kernel)
    policy.thread_options("victim", "client")
    policy.thread_options("noisy", "client")
    policy.finalize({"victim", "noisy"})
    victim_ctx = RequestContext("victim", "v")
    noisy_ctx = RequestContext("noisy", "n")
    # The victim is slowed 5x; the noisy workflow has the higher usage.
    for _ in range(20):
        policy.after_request(noisy_ctx, {}, 50_000)
    for _ in range(5):
        policy.after_request(victim_ctx, {}, 5_000)

    def idle():
        yield Sleep(us=500_000)

    kernel.spawn(idle)
    kernel.run(until_us=500_000)
    assert policy.throttle_events >= 1
    assert policy._workflows["noisy"].rate is not None


def test_retro_admission_sleeps_when_rate_exhausted():
    kernel = Kernel(cores=2)
    policy = RetroPolicy(baseline_by_group={})
    policy.attach(kernel)
    policy.thread_options("noisy", "client")
    workflow = policy._workflows["noisy"]
    workflow.rate = 10.0  # 10 requests/second
    workflow.tokens = 0.0
    workflow.last_refill_us = 0
    ctx = RequestContext("noisy", "n")
    times = {}

    def client():
        began = yield Now()
        yield from policy.before_request(ctx, {})
        times["waited"] = (yield Now()) - began

    kernel.spawn(client)
    kernel.run(until_us=seconds(2))
    # At 10 req/s an empty bucket needs ~100 ms for one token.
    assert times["waited"] >= 90_000


def test_darc_reserves_cores_for_short_type():
    kernel = Kernel(cores=4)
    policy = DarcPolicy(profile_window_us=50_000, reserve_fraction=0.5)
    policy.attach(kernel)
    policy.finalize({"victim", "noisy"})
    short_ctx = RequestContext("victim", "v")
    long_ctx = RequestContext("noisy", "n")

    def feed():
        for _ in range(10):
            yield from policy.before_request(short_ctx, {"type": "read"})
            yield Compute(us=10)
            policy.after_request(short_ctx, {"type": "read"}, 100)
            yield from policy.before_request(long_ctx, {"type": "write"})
            yield Compute(us=10)
            policy.after_request(long_ctx, {"type": "write"}, 50_000)
        yield Sleep(us=100_000)

    kernel.spawn(feed)
    kernel.run(until_us=200_000)
    assert policy.short_type == "read"
    assert policy.reserved_cores == 2
    reserved = [c for c in kernel.cores if c.reserved_for == "read"]
    assert len(reserved) == 2


def test_darc_tags_thread_during_request():
    kernel = Kernel(cores=2)
    policy = DarcPolicy()
    policy.attach(kernel)
    ctx = RequestContext("victim", "v")
    seen = {}

    def client():
        yield from policy.before_request(ctx, {"type": "read"})
        seen["during"] = kernel.current_thread.darc_tag
        yield Compute(us=10)
        policy.after_request(ctx, {"type": "read"}, 100)
        seen["after"] = kernel.current_thread.darc_tag

    kernel.spawn(client)
    kernel.run(until_us=seconds(1))
    assert seen["during"] == "read"
    assert seen["after"] is None


def test_darc_single_type_reserves_nothing():
    kernel = Kernel(cores=4)
    policy = DarcPolicy(profile_window_us=10_000)
    policy.attach(kernel)
    policy.finalize({"only"})
    ctx = RequestContext("only", "o")
    policy.after_request(ctx, {"type": "read"}, 100)

    def idle():
        yield Sleep(us=50_000)

    kernel.spawn(idle)
    kernel.run(until_us=50_000)
    assert policy.short_type is None
    assert policy.reserved_cores == 0
