"""Tests for the self-healing runner: retries, timeouts, degradation.

Faults are injected with the runner's own deterministic test hooks
(``REPRO_RUNNER_FAULT`` / ``REPRO_RUNNER_FAULT_DIR``): the first ``n``
attempts of each job claim an O_EXCL marker file and fail, so retries
succeed — the transient-fault shape the retry loop must survive.  Also
covers the cache hardening (corrupt-entry quarantine, write locking)
and interrupt handling (partial results survive Ctrl-C).
"""

import json
import os
import signal

import pytest

import repro.runner.runner as runner_module
from repro.runner import (
    JobFailedError,
    JobSpec,
    ResultCache,
    RunInterrupted,
    SweepInterrupted,
    baseline_spec,
    run_jobs,
    run_sweep,
)

#: Short simulated duration: long enough to clear the cases' 1 s warmup.
DURATION_S = 1.5


def _specs(n, seed0=1):
    return [baseline_spec("c1", seed0 + i, DURATION_S) for i in range(n)]


# ---------------------------------------------------------------------------
# Worker crash containment and retry


def test_serial_retry_survives_injected_crash(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:1")
    monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path))
    stats = {}
    results = run_jobs(_specs(1), jobs=1, use_cache=False,
                       fingerprint="f" * 64, retry_backoff_s=0.001,
                       stats=stats)
    assert len(results) == 1
    (result,) = results.values()
    assert result["victim_samples"] > 0
    assert stats["retries"] == 1
    assert stats["worker_errors"] == 1
    assert stats["degraded"] is False


def test_serial_gives_up_after_retry_budget(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:10")
    monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path))
    with pytest.raises(JobFailedError) as excinfo:
        run_jobs(_specs(1), jobs=1, use_cache=False,
                 fingerprint="f" * 64, retries=0, retry_backoff_s=0.001)
    assert "injected worker crash" in str(excinfo.value)


def test_pool_retry_survives_injected_crash(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:1")
    monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path))
    stats = {}
    results = run_jobs(_specs(2), jobs=2, use_cache=False,
                       fingerprint="f" * 64, retry_backoff_s=0.001,
                       stats=stats)
    assert len(results) == 2
    assert all(r["victim_samples"] > 0 for r in results.values())
    assert stats["worker_errors"] >= 1


@pytest.mark.skipif(not hasattr(signal, "SIGALRM"),
                    reason="needs SIGALRM for wall budgets")
def test_timed_out_job_is_retried(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNNER_FAULT", "timeout:1")
    monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path))
    stats = {}
    results = run_jobs(_specs(1), jobs=1, use_cache=False,
                       fingerprint="f" * 64, timeout_s=0.3,
                       retry_backoff_s=0.001, stats=stats)
    assert len(results) == 1
    assert stats["timeouts"] == 1
    assert stats["retries"] == 1


def test_pool_degrades_to_serial_on_persistent_worker_failure(monkeypatch):
    """crash-pool fails in pool workers only: the serial path must win."""
    monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash-pool")
    stats = {}
    results = run_jobs(_specs(4), jobs=2, use_cache=False,
                       fingerprint="f" * 64, retry_backoff_s=0.001,
                       stats=stats)
    assert len(results) == 4
    assert stats["degraded"] is True
    assert stats["worker_errors"] >= runner_module.DEGRADE_AFTER


def test_interrupt_carries_partial_results(monkeypatch):
    calls = {"n": 0}
    real_run_one = runner_module._run_one

    def interrupt_second(key, spec_dict, timeout_s):
        calls["n"] += 1
        if calls["n"] >= 2:
            raise KeyboardInterrupt()
        return real_run_one(key, spec_dict, timeout_s)

    monkeypatch.setattr(runner_module, "_run_one", interrupt_second)
    with pytest.raises(RunInterrupted) as excinfo:
        run_jobs(_specs(3), jobs=1, use_cache=False, fingerprint="f" * 64)
    assert len(excinfo.value.results) == 1


# ---------------------------------------------------------------------------
# Cache hardening


def test_corrupt_cache_entry_is_quarantined(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    key = "ab" + "0" * 62
    cache.put(key, {}, "f" * 64, {"ok": True})
    with open(cache.path_for(key), "w") as handle:
        handle.write("{truncated")
    assert cache.get(key) is None
    assert cache.quarantined == 1
    # The bad bytes were preserved for forensics, out of the lookup path.
    bad = cache.path_for(key) + ".bad"
    assert os.path.exists(bad)
    assert not os.path.exists(cache.path_for(key))
    # And the slot is usable again.
    cache.put(key, {}, "f" * 64, {"ok": True})
    assert cache.get(key) == {"ok": True}


def test_quarantined_entries_do_not_count(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    key = "cd" + "0" * 62
    cache.put(key, {}, "f" * 64, {"ok": True})
    assert len(cache) == 1
    with open(cache.path_for(key), "w") as handle:
        handle.write("]")
    cache.get(key)
    assert len(cache) == 0


def test_write_lock_serializes_puts(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    with cache.write_lock():
        cache_dir_entries = os.listdir(str(tmp_path / "cache"))
    assert "write.lock" in cache_dir_entries
    # Locking is reentrant across sequential puts (no deadlock, no leak).
    cache.put("ef" + "0" * 62, {}, "f" * 64, {"ok": 1})
    cache.put("ef" + "1" * 62, {}, "f" * 64, {"ok": 2})
    assert len(cache) == 2


# ---------------------------------------------------------------------------
# Spec plumbing for chaos jobs


def test_jobspec_faults_roundtrip_and_addressing():
    plain = JobSpec("c1", "pbox", seed=1, duration_s=2.0)
    chaotic = JobSpec("c1", "pbox", seed=1, duration_s=2.0,
                      faults="stall,crash")
    clone = JobSpec.from_dict(chaotic.to_dict())
    assert clone == chaotic
    assert clone.faults == "stall,crash"
    assert "faults[stall,crash]" in chaotic.label()
    # Chaos jobs must never collide with vanilla jobs in the cache.
    assert plain.key("f" * 64) != chaotic.key("f" * 64)


def test_sweep_completes_despite_injected_crash(tmp_path, monkeypatch):
    """Acceptance: a transient worker crash still yields a full sweep."""
    monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:1")
    monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path / "marks"))
    os.makedirs(str(tmp_path / "marks"))
    cache = ResultCache(str(tmp_path / "cache"))
    result = run_sweep(case_ids=["c1"], seeds=[1], duration_s=DURATION_S,
                       cache=cache, fingerprint="f" * 64)
    assert set(result.evaluations) == {("c1", 1)}
    out = result.write_json(str(tmp_path / "SWEEP.json"))
    with open(out) as handle:
        snapshot = json.load(handle)
    assert "c1" in snapshot["cases"]
    assert snapshot["cases"]["c1"]["seeds"]["1"]["to_us"] > 0


# ---------------------------------------------------------------------------
# Sweep interruption


def test_sweep_interrupt_yields_writable_partial(tmp_path, monkeypatch):
    import repro.runner.sweep as sweep_module

    calls = {"n": 0}
    real_run_jobs = sweep_module.run_jobs

    def interrupt_stage2(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] >= 2:
            raise RunInterrupted({})
        return real_run_jobs(*args, **kwargs)

    monkeypatch.setattr(sweep_module, "run_jobs", interrupt_stage2)
    cache = ResultCache(str(tmp_path / "cache"))
    with pytest.raises(SweepInterrupted) as excinfo:
        run_sweep(case_ids=["c1"], seeds=[1], duration_s=DURATION_S,
                  cache=cache, fingerprint="f" * 64)
    partial = excinfo.value.partial
    out = partial.write_json(str(tmp_path / "SWEEP.json"))
    with open(out) as handle:
        snapshot = json.load(handle)
    assert snapshot["schema"] >= 1
    # Stage 2 never ran, so no evaluation completed — but the file is
    # well-formed rather than truncated or absent.
    assert snapshot["cases"] == {}
