"""Unit tests for workload generators and statistics."""

import pytest

from repro.sim.rng import RngRegistry, RngStream
from repro.workloads import (
    FacebookETC,
    LatencyRecorder,
    TimelineSeries,
    interference_level,
    percentile,
    reduction_ratio,
)
from repro.workloads.distributions import (
    OLTPMix,
    exponential_interarrival,
    uniform_interarrival,
)


def test_percentile_nearest_rank():
    values = list(range(1, 101))
    assert percentile(values, 0) == 1
    assert percentile(values, 50) == 51
    assert percentile(values, 95) == 96
    assert percentile(values, 100) == 100


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_interference_metrics_match_paper_definitions():
    # Ti = 24, To = 12: p = 1.0; a solution at Ts = 18 removes half.
    assert interference_level(24, 12) == pytest.approx(1.0)
    assert reduction_ratio(24, 18, 12) == pytest.approx(0.5)
    # Ts below To gives a ratio above 1 (the paper reports up to 113.6%).
    assert reduction_ratio(24, 11, 12) > 1.0


def test_reduction_ratio_zero_denominator():
    assert reduction_ratio(10, 10, 10) == 0.0


def test_latency_recorder_warmup_exclusion():
    recorder = LatencyRecorder("r", record_from_us=1_000_000)
    recorder.record(500, 999_999)   # during warmup: dropped
    recorder.record(700, 1_000_001)
    assert recorder.count == 1
    assert recorder.mean_us() == 700


def test_latency_recorder_mean_requires_samples():
    with pytest.raises(ValueError):
        LatencyRecorder("empty").mean_us()


def test_latency_recorder_throughput():
    recorder = LatencyRecorder("r")
    for i in range(10):
        recorder.record(100, i * 1_000)
    assert recorder.throughput_per_sec(1_000_000) == pytest.approx(10.0)


def test_timeline_series_buckets_by_second():
    series = TimelineSeries(bucket_us=1_000_000)
    series.add(100_000, 10)
    series.add(900_000, 30)
    series.add(1_500_000, 50)
    means = dict(series.mean_series())
    assert means[0.0] == 20
    assert means[1.0] == 50
    counts = dict(series.count_series())
    assert counts[0.0] == 2


def test_recorder_timeline_integration():
    recorder = LatencyRecorder("r")
    recorder.record(100, 200_000)
    recorder.record(300, 1_200_000)
    series = recorder.timeline()
    assert len(series.buckets()) == 2


def test_rng_streams_are_deterministic_and_independent():
    a1 = RngStream(42, "alpha")
    a2 = RngStream(42, "alpha")
    b = RngStream(42, "beta")
    seq_a1 = [a1.randint(0, 1000) for _ in range(10)]
    seq_a2 = [a2.randint(0, 1000) for _ in range(10)]
    seq_b = [b.randint(0, 1000) for _ in range(10)]
    assert seq_a1 == seq_a2
    assert seq_a1 != seq_b


def test_rng_registry_caches_streams():
    registry = RngRegistry(7)
    assert registry.stream("x") is registry.stream("x")


def test_zipf_index_is_skewed():
    rng = RngStream(1, "zipf")
    draws = [rng.zipf_index(100, 1.2) for _ in range(2_000)]
    assert all(0 <= d < 100 for d in draws)
    # Rank 0 should be drawn far more often than rank 50.
    assert draws.count(0) > draws.count(50) * 2


def test_facebook_usr_is_read_dominated():
    rng = RngStream(3, "usr")
    mix = FacebookETC(rng, pool="USR")
    ops = [mix.next_request()[0] for _ in range(2_000)]
    assert ops.count("get") / len(ops) > 0.98


def test_facebook_var_is_write_heavy():
    rng = RngStream(3, "var")
    mix = FacebookETC(rng, pool="VAR")
    ops = [mix.next_request()[0] for _ in range(2_000)]
    assert ops.count("set") / len(ops) > 0.7


def test_facebook_rejects_unknown_pool():
    with pytest.raises(ValueError):
        FacebookETC(RngStream(1, "x"), pool="XYZ")


def test_oltp_mix_modes():
    rng = RngStream(5, "oltp")
    read_only = OLTPMix(rng, mode="read_only")
    assert all(read_only.next_request()[0] == "read" for _ in range(50))
    write_only = OLTPMix(rng, mode="write_only")
    assert all(write_only.next_request()[0] == "write" for _ in range(50))
    mixed = OLTPMix(rng, mode="mixed")
    ops = [mixed.next_request()[0] for _ in range(500)]
    assert 0.55 < ops.count("read") / len(ops) < 0.85


def test_interarrival_generators_positive():
    rng = RngStream(9, "arrivals")
    for _ in range(100):
        assert uniform_interarrival(rng, 1_000) >= 0
        assert exponential_interarrival(rng, 1_000) >= 0
    assert exponential_interarrival(rng, 0) == 0
