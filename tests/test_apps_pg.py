"""Unit tests for the PostgreSQL application model."""

import pytest

from repro.apps.pgsim import PGConfig, PostgresServer
from repro.core import OperationCosts, PBoxManager, PBoxRuntime
from repro.sim import Kernel, Now, Sleep
from repro.sim.clock import seconds
from repro.workloads import LatencyRecorder


def make_server(pbox=False, **config):
    kernel = Kernel(cores=4)
    manager = PBoxManager(kernel, enabled=pbox)
    runtime = PBoxRuntime(manager, costs=OperationCosts.zero(), enabled=pbox)
    server = PostgresServer(kernel, runtime, PGConfig(**config))
    return kernel, server


def run_requests(kernel, server, requests, name="client", start_us=0):
    recorder = LatencyRecorder(name)
    conn = server.connect(name)

    def body():
        if start_us:
            yield Sleep(us=start_us)
        yield from conn.open()
        for request in requests:
            began = yield Now()
            yield from conn.execute(request)
            ended = yield Now()
            recorder.record(ended - began, ended)
        yield from conn.close()

    kernel.spawn(body, name=name)
    return recorder


def test_index_scan_cost_grows_with_in_progress_tuples():
    kernel, server = make_server()
    fast = run_requests(
        kernel, server, [{"kind": "indexed_select", "base_us": 100,
                          "work_us": 0}], name="fast")
    slow = run_requests(
        kernel, server, [{"kind": "indexed_select", "base_us": 100,
                          "work_us": 0}], name="slow", start_us=100_000)

    def filler():
        yield Sleep(us=50_000)
        yield from server.index.insert_batch(2_000, batch_work_us=100)

    kernel.spawn(filler, name="filler")
    kernel.run(until_us=seconds(1))
    assert slow.samples_us[0] > fast.samples_us[0]


def test_index_end_insert_txn_clears_tuples():
    kernel, server = make_server()

    def body():
        yield from server.index.insert_batch(500, batch_work_us=10)
        assert server.index.in_progress_tuples == 500
        server.index.end_insert_txn()
        assert server.index.in_progress_tuples == 0

    kernel.spawn(body)
    kernel.run(until_us=seconds(1))


def test_lock_manager_scan_blocks_other_tables():
    kernel, server = make_server()
    victim = run_requests(
        kernel, server,
        [{"kind": "other_table_query", "work_us": 100}],
        name="victim", start_us=1_000)

    def scanner():
        conn = server.connect("scanner")
        yield from conn.open()
        yield from conn.execute({"kind": "lock_table_scan", "scan_us": 30_000})
        yield from conn.close()

    kernel.spawn(scanner, name="scanner")
    kernel.run(until_us=seconds(1))
    assert victim.samples_us[0] >= 25_000


def test_lwlock_shared_stream_blocks_exclusive():
    kernel, server = make_server()
    victim = run_requests(
        kernel, server,
        [{"kind": "lw_exclusive", "hold_us": 100, "work_us": 0}],
        name="victim", start_us=2_000)
    for index, start in enumerate((0, 4_000)):
        run_requests(
            kernel, server,
            [{"kind": "lw_shared", "hold_us": 8_000}],
            name="shared-%d" % index, start_us=start)
    kernel.run(until_us=seconds(1))
    # Overlapping shared holds cover 0..12 ms; the exclusive waiter
    # arriving at 2 ms cannot enter before then.
    assert victim.samples_us[0] >= 9_000


def test_vacuum_trigger_threshold():
    kernel, server = make_server(vacuum_trigger=100)
    vacuum = server.vacuum
    assert not vacuum.needs_vacuum
    vacuum.add_dead_rows(99)
    assert not vacuum.needs_vacuum
    vacuum.add_dead_rows(1)
    assert vacuum.needs_vacuum


def test_vacuum_process_compacts_dead_rows():
    kernel, server = make_server(vacuum_trigger=100, vacuum_batch_us=1_000)
    server.vacuum.add_dead_rows(1_000)
    kernel.spawn(server.vacuum_process_body, name="vacuum")
    kernel.run(until_us=seconds(1))
    assert server.vacuum.dead_rows == 0
    assert server.vacuum.vacuumed_total == 1_000


def test_wal_group_commit_charges_leader_for_pending_bytes():
    kernel, server = make_server()
    times = {}

    def bulk():
        conn = server.connect("bulk")
        yield from conn.open()
        yield from server.wal.append(100)  # 100 KB pending, no flush
        yield from conn.close()

    def committer():
        yield Sleep(us=5_000)
        conn = server.connect("committer")
        yield from conn.open()
        began = yield Now()
        yield from conn.execute({"kind": "wal_small_commit", "record_kb": 1,
                                 "work_us": 0})
        times["latency"] = (yield Now()) - began
        yield from conn.close()

    kernel.spawn(bulk, name="bulk")
    kernel.spawn(committer, name="committer")
    kernel.run(until_us=seconds(1))
    # The small commit's flush paid for the bulk writer's 100 KB too.
    expected_flush = server.wal.flush_floor_us + 101 * server.wal.flush_us_per_kb
    assert times["latency"] >= expected_flush
    assert server.wal.pending_kb == 0


def test_unknown_request_kind_raises():
    from repro.sim.errors import ThreadCrashedError

    kernel, server = make_server()
    run_requests(kernel, server, [{"kind": "nope"}])
    with pytest.raises(ThreadCrashedError):
        kernel.run(until_us=seconds(1))
