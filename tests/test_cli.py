"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import MetricsRegistry, validate_chrome_trace


def test_list_cases(capsys):
    assert main(["list-cases"]) == 0
    out = capsys.readouterr().out
    for case_id in ("c1", "c8", "c16"):
        assert case_id in out
    assert "UNDO log" in out


def test_run_case(capsys):
    assert main(["run-case", "c3", "--duration", "3"]) == 0
    out = capsys.readouterr().out
    assert "To (interference-free)" in out
    assert "p =" in out
    assert "r =" in out


def test_run_case_with_baseline_solution(capsys):
    assert main(["run-case", "c3", "--duration", "2",
                 "--solution", "cgroup"]) == 0
    out = capsys.readouterr().out
    assert "Ts (cgroup)" in out


def test_trace_command(capsys):
    assert main(["trace", "c1", "--duration", "3"]) == 0
    out = capsys.readouterr().out
    assert "pBox trace report" in out
    assert "state events" in out


def test_trace_command_exports_chrome_trace(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main(["trace", "c1", "--duration", "3",
                 "--export", str(path)]) == 0
    out = capsys.readouterr().out
    assert "wrote %s" % path in out
    with open(path) as handle:
        trace = json.load(handle)
    summary = validate_chrome_trace(trace)
    assert summary["events"] > 0
    assert summary["by_phase"]["X"] > 0
    assert trace["otherData"]["case"] == "c1"
    # Per-thread tracks and pBox lanes both exist as named processes.
    names = {event["args"]["name"] for event in trace["traceEvents"]
             if event["ph"] == "M" and event["name"] == "process_name"}
    assert names == {"threads", "pBoxes"}


def test_trace_command_record_events(capsys):
    assert main(["trace", "c1", "--duration", "2", "--record-events"]) == 0
    out = capsys.readouterr().out
    assert "pBox trace report" in out


def test_metrics_command(capsys):
    assert main(["metrics", "c1", "--duration", "3"]) == 0
    out = capsys.readouterr().out
    assert "metrics registry" in out
    assert "sched.context_switches" in out
    assert "latency.victim_us" in out
    assert "p50" in out and "p95" in out and "p99" in out


def test_metrics_command_json_feeds_report(tmp_path, capsys):
    path = tmp_path / "obs_metrics.json"
    assert main(["metrics", "c1", "--duration", "2",
                 "--json", str(path)]) == 0
    registry = MetricsRegistry.load_json(str(path))
    assert registry.counters["sched.context_switches"].value > 0
    assert registry.histograms["latency.victim_us"].count > 0
    # report.py consumes the same snapshot.
    assert main(["report", "--results-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    with open(tmp_path / "REPORT.md") as handle:
        report = handle.read()
    assert "unified metrics registry" in report
    assert "latency.victim_us" in report


def test_profile_command(capsys):
    assert main(["profile", "c17", "--duration", "2"]) == 0
    out = capsys.readouterr().out
    assert "contention attribution" in out
    assert "blame matrix" in out
    assert "buf_pool.free_blocks" in out
    assert "folded stacks" in out


def test_profile_command_writes_all_outputs(tmp_path, capsys):
    folded = tmp_path / "out.folded"
    speedscope = tmp_path / "out.speedscope.json"
    html = tmp_path / "out.html"
    blame = tmp_path / "blame.json"
    assert main(["profile", "c17", "--duration", "2",
                 "--folded", str(folded), "--json", str(speedscope),
                 "--html", str(html), "--blame", str(blame)]) == 0
    out = capsys.readouterr().out
    for path in (folded, speedscope, html, blame):
        assert "wrote %s" % path in out
    # Folded: "frame;frame weight" lines.
    for line in folded.read_text().splitlines():
        stack, weight = line.rsplit(" ", 1)
        assert ";" in stack and int(weight) > 0
    # Speedscope: valid sampled profile.
    with open(speedscope) as handle:
        doc = json.load(handle)
    assert doc["profiles"][0]["type"] == "sampled"
    # HTML: self-contained summary including attribution.
    page = html.read_text()
    assert page.startswith("<!DOCTYPE html>")
    assert "Contention attribution" in page
    # Blame snapshot: the profiler's to_dict schema.
    with open(blame) as handle:
        snapshot = json.load(handle)
    assert snapshot["cells"]
    assert snapshot["stats"]["events"] > 0


def test_profile_command_vanilla_solution(capsys):
    assert main(["profile", "c17", "--duration", "2",
                 "--solution", "none", "--no-slices"]) == 0
    out = capsys.readouterr().out
    assert "contention attribution" in out


def test_analyze_command(tmp_path, capsys):
    source = tmp_path / "demo.c"
    source.write_text("""
        int shared_counter;
        void producer(int n) { shared_counter = shared_counter + n; }
        void consumer(int n) {
            while (shared_counter < n) {
                usleep(10);
            }
        }
    """)
    assert main(["analyze", str(source)]) == 0
    out = capsys.readouterr().out
    assert "consumer" in out
    assert "shared_counter" in out


def test_analyze_command_no_findings(tmp_path, capsys):
    source = tmp_path / "clean.c"
    source.write_text("void f(int x) { work(x); }")
    assert main(["analyze", str(source)]) == 1
    assert "no candidate" in capsys.readouterr().out


def test_parser_rejects_unknown_case():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run-case", "c99"])


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_report_command(tmp_path, capsys):
    (tmp_path / "tab05_analyzer.txt").write_text("a\tb\n1\t2\n")
    assert main(["report", "--results-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "REPORT.md" in out


def test_analyze_command_python_file(tmp_path, capsys):
    source = tmp_path / "service.py"
    source.write_text(
        "import time\n"
        "pending = 0\n"
        "def add(n):\n"
        "    global pending\n"
        "    pending = pending + n\n"
        "def drain(n):\n"
        "    while pending > n:\n"
        "        time.sleep(0.01)\n"
    )
    assert main(["analyze", str(source)]) == 0
    out = capsys.readouterr().out
    assert "drain" in out
    assert "pending" in out
