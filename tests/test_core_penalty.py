"""Unit tests for the adaptive penalty engine (Section 4.4.2)."""

import math

import pytest

from repro.core import (
    AdaptivePenalty,
    FixedPenalty,
    IsolationRule,
    PBoxManager,
    PenaltyPolicy,
)
from repro.core.pbox import PBox


def make_boxes(goal_pct=50):
    rule = IsolationRule(isolation_level=goal_pct)
    noisy = PBox(1, rule)
    victim = PBox(2, rule)
    return noisy, victim


def test_initial_penalty_uses_p1_formula():
    engine = AdaptivePenalty(min_penalty_us=1, max_penalty_us=10**9)
    noisy, victim = make_boxes()
    noisy.activity_start_us = 0
    victim.activity_start_us = 0
    victim.defer_time_us = 90_000
    now = 10_000  # noisy te = 10 ms
    expected = math.sqrt(90_000 * 10_000) - 10_000
    decision = engine.decide(now, noisy, victim, "res")
    assert decision.policy is PenaltyPolicy.INITIAL
    assert decision.length_us == int(expected)


def test_initial_penalty_clamped_to_minimum():
    engine = AdaptivePenalty(min_penalty_us=2_000)
    noisy, victim = make_boxes()
    noisy.activity_start_us = 0
    victim.activity_start_us = 0
    victim.defer_time_us = 10  # tiny defer: raw p1 would be negative
    decision = engine.decide(1_000_000, noisy, victim, "res")
    assert decision.length_us == 2_000


def test_score_policy_grows_on_ineffective_actions():
    engine = AdaptivePenalty(alpha=5, min_penalty_us=1, max_penalty_us=10**9)
    noisy, victim = make_boxes()
    noisy.activity_start_us = 0
    victim.activity_start_us = 0
    victim.defer_time_us = 90_000
    victim.total_exec_us = 100_000
    victim.total_defer_us = 10_000

    first = engine.decide(10_000, noisy, victim, "res")
    # Victim got WORSE: its defer ratio increased.
    victim.total_defer_us = 30_000
    second = engine.decide(20_000, noisy, victim, "res")
    assert second.policy is PenaltyPolicy.SCORE
    # score 1 -> p = p1 * (1 + 1/5)
    assert second.length_us == pytest.approx(first.length_us * 1.2, rel=0.01)

    victim.total_defer_us = 50_000
    third = engine.decide(30_000, noisy, victim, "res")
    assert third.length_us == pytest.approx(first.length_us * 1.4, rel=0.01)


def test_score_policy_decrements_on_effective_actions():
    engine = AdaptivePenalty(alpha=5, min_penalty_us=1, max_penalty_us=10**9)
    noisy, victim = make_boxes()
    noisy.activity_start_us = 0
    victim.activity_start_us = 0
    victim.defer_time_us = 1_000
    victim.total_exec_us = 100_000
    victim.total_defer_us = 40_000

    first = engine.decide(10_000, noisy, victim, "res")
    # Victim improved: defer ratio decreased -> score stays at 0.
    victim.total_defer_us = 30_000
    second = engine.decide(20_000, noisy, victim, "res")
    assert second.length_us == pytest.approx(first.length_us, rel=0.01)


def test_gap_policy_selected_when_defer_dwarfs_penalty():
    engine = AdaptivePenalty(
        gap_policy_factor=10, min_penalty_us=1, max_penalty_us=10**9
    )
    noisy, victim = make_boxes(goal_pct=50)
    noisy.activity_start_us = 0
    victim.activity_start_us = 0
    victim.defer_time_us = 2_000
    victim.total_exec_us = 100_000
    victim.total_defer_us = 30_000
    first = engine.decide(10_000, noisy, victim, "res")

    # Defer time far exceeds the previous penalty: gap-based is chosen.
    victim.defer_time_us = first.length_us * 50
    victim.total_defer_us = 60_000
    second = engine.decide(20_000, noisy, victim, "res")
    assert second.policy is PenaltyPolicy.GAP


def test_gap_policy_backs_off_at_goal():
    engine = AdaptivePenalty(
        gap_policy_factor=1, min_penalty_us=500, max_penalty_us=10**9
    )
    noisy, victim = make_boxes(goal_pct=50)
    noisy.activity_start_us = 0
    victim.activity_start_us = 0
    victim.defer_time_us = 100_000
    victim.total_exec_us = 1_000_000
    victim.total_defer_us = 400_000
    engine.decide(10_000, noisy, victim, "res")

    # Victim now comfortably below goal (ratio ~0.1 < 1/3) while its
    # open defer still exceeds the previous penalty (gap policy chosen).
    victim.defer_time_us = 50_000
    victim.total_defer_us = 50_000
    victim.total_exec_us = 1_000_000
    decision = engine.decide(20_000, noisy, victim, "res")
    assert decision.policy is PenaltyPolicy.GAP
    assert decision.length_us == 500  # min penalty


def test_lengths_and_action_count_tracking():
    engine = AdaptivePenalty()
    noisy, victim = make_boxes()
    noisy.activity_start_us = 0
    victim.activity_start_us = 0
    victim.defer_time_us = 50_000
    for i in range(4):
        engine.decide(10_000 * (i + 1), noisy, victim, "res")
    assert engine.action_count() == 4
    assert len(engine.lengths_us()) == 4
    assert sum(engine.policy_counts().values()) == 4


def test_convergence_steps_detects_fixed_point():
    engine = AdaptivePenalty(min_penalty_us=1_000)
    # Manufacture a decision history directly.
    from repro.core.penalty import PenaltyDecision

    lengths = [10_000, 20_000, 30_000, 30_100, 30_050, 30_000]
    engine.decisions = [
        PenaltyDecision(l, PenaltyPolicy.SCORE, i, 1, "res")
        for i, l in enumerate(lengths)
    ]
    steps = engine.convergence_steps(tolerance=0.05)
    assert steps == 3  # converged at the third decision


def test_fixed_penalty_always_same_length():
    engine = FixedPenalty(10_000)
    noisy, victim = make_boxes()
    noisy.activity_start_us = 0
    victim.activity_start_us = 0
    for i in range(3):
        decision = engine.decide(1_000 * (i + 1), noisy, victim, "res")
        assert decision.length_us == 10_000
        assert decision.policy is PenaltyPolicy.FIXED
    assert engine.action_count() == 3
    assert engine.convergence_steps() == 1.0


def test_fixed_penalty_rejects_nonpositive():
    with pytest.raises(ValueError):
        FixedPenalty(0)


def test_per_pair_state_is_independent():
    engine = AdaptivePenalty(min_penalty_us=1, max_penalty_us=10**9)
    noisy, victim = make_boxes()
    noisy.activity_start_us = 0
    victim.activity_start_us = 0
    victim.defer_time_us = 50_000
    a = engine.decide(10_000, noisy, victim, "res_a")
    b = engine.decide(10_000, noisy, victim, "res_b")
    assert a.policy is PenaltyPolicy.INITIAL
    assert b.policy is PenaltyPolicy.INITIAL
