"""Unit tests for the smaller simulator components."""

import pytest

from repro.sim.cgroup import Cgroup
from repro.sim.clock import Clock, ms, seconds, to_ms, to_seconds
from repro.sim.futex import WaitQueueTable
from repro.sim.thread import SimThread, ThreadState


# ---------------------------------------------------------------------------
# Clock
# ---------------------------------------------------------------------------

def test_clock_conversions_round_trip():
    assert ms(1.5) == 1_500
    assert seconds(0.25) == 250_000
    assert to_ms(2_500) == 2.5
    assert to_seconds(1_500_000) == 1.5


def test_clock_advances_monotonically():
    clock = Clock()
    clock.advance_to(100)
    assert clock.now_us == 100
    with pytest.raises(ValueError):
        clock.advance_to(99)


# ---------------------------------------------------------------------------
# Cgroup accounting
# ---------------------------------------------------------------------------

def test_cgroup_remaining_and_charge():
    group = Cgroup("g", quota_us=10_000, period_us=100_000)
    assert group.remaining_us(0) == 10_000
    group.charge(4_000)
    assert group.remaining_us(0) == 6_000
    group.charge(6_000)
    assert group.remaining_us(0) == 0


def test_cgroup_refresh_rolls_window_and_releases():
    group = Cgroup("g", quota_us=10_000, period_us=100_000)
    group.charge(10_000)
    parked = object()
    group.throttled_threads.append(parked)
    released = group.refresh(150_000)
    assert released == [parked]
    assert group.runtime_us == 0
    assert group.period_start_us == 100_000


def test_cgroup_refresh_noop_within_period():
    group = Cgroup("g", quota_us=10_000)
    group.charge(5_000)
    assert group.refresh(50_000) == []
    assert group.runtime_us == 5_000


def test_cgroup_unlimited_quota():
    group = Cgroup("g", quota_us=None)
    assert group.remaining_us(0) is None
    group.charge(10**9)
    assert group.remaining_us(10**9) is None


def test_cgroup_rejects_bad_quota():
    with pytest.raises(ValueError):
        Cgroup("g", quota_us=0)
    with pytest.raises(ValueError):
        Cgroup("g", quota_us=100, period_us=0)
    group = Cgroup("g", quota_us=100)
    with pytest.raises(ValueError):
        group.set_quota(-5)


def test_cgroup_next_refresh_time():
    group = Cgroup("g", quota_us=10_000, period_us=100_000)
    assert group.next_refresh_us(40_000) == 100_000
    assert group.next_refresh_us(100_000) == 100_000


# ---------------------------------------------------------------------------
# Futex wait-queue table
# ---------------------------------------------------------------------------

def make_thread(name):
    def body():
        yield

    return SimThread(body, name=name)


def test_waitqueue_fifo_order():
    table = WaitQueueTable()
    key = object()
    threads = [make_thread("t%d" % i) for i in range(3)]
    for thread in threads:
        table.add(key, thread)
    woken = table.pop_waiters(key, 2)
    assert woken == threads[:2]
    assert table.waiters(key) == [threads[2]]


def test_waitqueue_remove_specific_thread():
    table = WaitQueueTable()
    key = "k"
    first, second = make_thread("a"), make_thread("b")
    table.add(key, first)
    table.add(key, second)
    assert table.remove(key, first) is True
    assert table.remove(key, first) is False
    assert table.waiters(key) == [second]


def test_waitqueue_empty_key_cleanup():
    table = WaitQueueTable()
    thread = make_thread("t")
    table.add("k", thread)
    table.pop_waiters("k", 5)
    assert table.keys() == []
    assert table.waiting_count() == 0


def test_waitqueue_counts_across_keys():
    table = WaitQueueTable()
    table.add("a", make_thread("x"))
    table.add("b", make_thread("y"))
    table.add("b", make_thread("z"))
    assert table.waiting_count() == 3
    assert sorted(table.keys()) == ["a", "b"]


# ---------------------------------------------------------------------------
# SimThread basics
# ---------------------------------------------------------------------------

def test_thread_requires_generator():
    with pytest.raises(TypeError):
        SimThread(lambda: 42)


def test_thread_accepts_callable_or_generator():
    def body():
        yield

    from_callable = SimThread(body)
    from_generator = SimThread(body())
    assert from_callable.state is ThreadState.NEW
    assert from_generator.state is ThreadState.NEW
    assert from_callable.alive
