"""Tests for isolation rules and the per-pBox interference metrics."""

import pytest

from repro.core import IsolationRule, PBoxManager, StateEvent
from repro.core.pbox import ActivityRecord, PBox
from repro.core.rules import Metric, RuleType
from repro.sim import Kernel, Sleep


def make_pbox(records, level=50, metric=Metric.AVERAGE):
    rule = IsolationRule(isolation_level=level, metric=metric)
    pbox = PBox(1, rule)
    for defer_us, exec_us in records:
        pbox.history.append(ActivityRecord(defer_us, exec_us))
    return pbox


def test_rule_validation():
    with pytest.raises(ValueError):
        IsolationRule(isolation_level=0)
    with pytest.raises(ValueError):
        IsolationRule(isolation_level=-10)
    rule = IsolationRule(isolation_level=30)
    assert rule.rule_type is RuleType.RELATIVE
    assert rule.goal == pytest.approx(0.3)


def test_goal_defer_ratio_examples():
    # lambda = 1 (100% worse) corresponds to spending half the time deferred.
    assert IsolationRule(100).goal_defer_ratio == pytest.approx(0.5)
    assert IsolationRule(50).goal_defer_ratio == pytest.approx(1 / 3)


def test_average_interference_level():
    pbox = make_pbox([(100, 400), (300, 600)])
    # total defer 400, total exec 1000 -> 400/600.
    assert pbox.average_interference_level() == pytest.approx(400 / 600)


def test_average_interference_zero_without_defer():
    pbox = make_pbox([(0, 1_000), (0, 500)])
    assert pbox.average_interference_level() == 0.0


def test_max_interference_level_picks_worst_activity():
    pbox = make_pbox([(100, 1_000), (450, 500), (10, 1_000)])
    # Worst activity: 450/(500-450) = 9.
    assert pbox.max_interference_level() == pytest.approx(9.0)


def test_max_interference_inf_when_fully_deferred():
    pbox = make_pbox([(500, 500)])
    assert pbox.max_interference_level() == float("inf")


def test_tail_interference_level():
    records = [(0, 1_000)] * 19 + [(900, 1_000)]
    pbox = make_pbox(records)
    # p95 over 20 activities lands on the one bad record: 900/100 = 9.
    assert pbox.tail_interference_level() == pytest.approx(9.0)


def test_tail_interference_empty_history():
    pbox = make_pbox([])
    assert pbox.tail_interference_level() == 0.0


def test_defer_ratio_lifetime():
    pbox = make_pbox([])
    pbox.total_defer_us = 250
    pbox.total_exec_us = 1_000
    assert pbox.defer_ratio() == pytest.approx(0.25)
    empty = make_pbox([])
    assert empty.defer_ratio() == 0.0


@pytest.mark.parametrize("metric", [Metric.AVERAGE, Metric.TAIL, Metric.MAX])
def test_pbox_level_detection_honours_metric(metric):
    """The freeze-time detector reads the rule's configured metric."""
    kernel = Kernel(cores=4)
    manager = PBoxManager(kernel)
    rule = IsolationRule(isolation_level=50, metric=metric)
    boxes = {}

    def noisy():
        pbox = manager.create(IsolationRule(isolation_level=50))
        boxes["noisy"] = pbox
        manager.activate(pbox)
        for _ in range(6):
            manager.update(pbox, "res", StateEvent.HOLD)
            yield Sleep(us=9_000)
            manager.update(pbox, "res", StateEvent.UNHOLD)
            yield Sleep(us=500)
        manager.freeze(pbox)

    def victim():
        pbox = manager.create(rule)
        boxes["victim"] = pbox
        for _ in range(6):
            manager.activate(pbox)
            yield Sleep(us=200)
            manager.update(pbox, "res", StateEvent.PREPARE)
            yield Sleep(us=8_000)
            manager.update(pbox, "res", StateEvent.ENTER)
            manager.freeze(pbox)

    kernel.spawn(noisy, name="noisy")
    kernel.spawn(victim, name="victim")
    kernel.run(until_us=500_000)
    # Under every metric this extreme pattern crosses 90% of the goal,
    # so the noisy pBox accumulates penalties.
    assert boxes["noisy"].penalties_received >= 1


def test_history_window_bounded():
    pbox = make_pbox([])
    for i in range(200):
        pbox.history.append(ActivityRecord(i, 1_000))
    assert len(pbox.history) == PBox.HISTORY_WINDOW
    # Oldest records were evicted: the first remaining defer is 200-64.
    assert pbox.history[0].defer_us == 200 - PBox.HISTORY_WINDOW
