"""Property tests for the batched futex wake path.

``Kernel.futex_wake`` has two implementations behind one contract: a
classic per-thread enqueue+dispatch (taken while idle cores exist) and
a batched push + single dispatch (taken when the machine is saturated).
For arbitrary waiter populations, wake counts, and core counts the two
must be observationally identical: ``FutexWake(key, n)`` wakes exactly
``min(n, waiters)`` threads, in FIFO wait order, never touches a
thread that is not waiting on the key, and leaves the wait queue
holding exactly the remainder.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Kernel
from repro.sim.syscalls import Compute, FutexWait, FutexWake, Sleep


@settings(max_examples=80, deadline=None)
@given(
    waiters=st.integers(1, 25),
    wakes=st.lists(st.integers(1, 30), min_size=1, max_size=8),
    cores=st.sampled_from([1, 2, 4]),
    compute_us=st.sampled_from([0, 40]),
)
def test_wake_n_wakes_exactly_the_first_n_waiters(waiters, wakes, cores,
                                                  compute_us):
    """Both wake paths: exact count, FIFO order, no spurious wakeups.

    ``cores=1`` keeps the machine saturated while the waker runs (the
    batched path); multiple cores leave idle cores at wake time (the
    classic path).  ``compute_us`` varies whether woken waiters are
    still on-CPU when the next wake arrives.
    """
    kernel = Kernel(cores=cores, seed=7)
    key = "prop.cv"
    woken_order = []
    wake_returns = []
    queue_after = []

    def waiter(index):
        def body():
            yield FutexWait(key)
            woken_order.append(index)
            if compute_us:
                yield Compute(us=compute_us)
        return body

    for index in range(waiters):
        kernel.spawn(waiter(index), name="w%d" % index)

    def waker():
        # All waiters block within their first event; start after them.
        yield Sleep(us=10)
        for n in wakes:
            count = yield FutexWake(key, n)
            wake_returns.append(count)
            queue_after.append(len(kernel.futexes.waiters(key)))
            yield Sleep(us=50)

    kernel.spawn(waker, name="waker")
    kernel.run(until_us=1_000_000)

    # Model: the wait queue is FIFO in spawn order (spawn order is run
    # order here -- every waiter blocks at its first syscall).
    remaining = waiters
    expected_returns = []
    expected_queue = []
    for n in wakes:
        woke = min(n, remaining)
        remaining -= woke
        expected_returns.append(woke)
        expected_queue.append(remaining)

    assert wake_returns == expected_returns
    assert queue_after == expected_queue
    # FIFO: woken threads resume in wait order, and nobody was woken
    # twice or woken without having waited.
    total_woken = waiters - remaining
    assert woken_order == list(range(total_woken))
    # The leftover waiters are exactly the tail of the FIFO, still
    # parked on the key.
    assert len(kernel.futexes.waiters(key)) == remaining


@settings(max_examples=40, deadline=None)
@given(
    pools=st.integers(1, 4),
    per_pool=st.integers(1, 8),
    n=st.integers(1, 40),
)
def test_wake_never_crosses_keys(pools, per_pool, n):
    """A wake on one key never wakes a waiter parked on another key."""
    kernel = Kernel(cores=1, seed=3)
    woken = {pool: [] for pool in range(pools)}

    def waiter(pool, index):
        def body():
            yield FutexWait("pool.%d" % pool)
            woken[pool].append(index)
        return body

    for pool in range(pools):
        for index in range(per_pool):
            kernel.spawn(waiter(pool, index))

    def waker():
        yield Sleep(us=10)
        count = yield FutexWake("pool.0", n)
        woken["return"] = count

    kernel.spawn(waker)
    kernel.run(until_us=100_000)

    assert woken["return"] == min(n, per_pool)
    assert woken[0] == list(range(min(n, per_pool)))
    for pool in range(1, pools):
        assert woken[pool] == [], "wake on pool.0 leaked into pool.%d" % pool
        assert len(kernel.futexes.waiters("pool.%d" % pool)) == per_pool
