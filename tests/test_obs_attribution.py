"""Tests for the contention attribution profiler.

Unit coverage drives :class:`WaitForGraph` and :class:`BlameMatrix`
directly and the full profiler through a bare :class:`TracepointBus`;
the end-to-end test runs the buffer-pool case (c17) and asserts the
matrix pins the majority of the OLTP victim's wait on the analytics
pBox -- the acceptance bar for the attribution layer.
"""

import pytest

from repro.cases import Solution, get_case, run_case
from repro.core.events import StateEvent
from repro.obs import AttributionProfiler, TracepointBus, WaitForGraph
from repro.obs.attribution import UNKNOWN, BlameMatrix


class _FakePBox:
    def __init__(self, psid):
        self.psid = psid


def fire_event(bus, now, psid, key, event):
    bus.point("pbox.event").fire(now, pbox=_FakePBox(psid), key=key,
                                 event=event)


# ---------------------------------------------------------------------------
# WaitForGraph
# ---------------------------------------------------------------------------


def test_wait_for_graph_tracks_edges():
    graph = WaitForGraph()
    graph.add_wait("a", "b", "lock1", now_us=10)
    graph.add_wait("a", "c", "lock1", now_us=10)
    assert sorted(graph.waiting_on("a")) == ["b", "c"]
    assert len(graph.edges()) == 2
    graph.clear_waits("a")
    assert graph.waiting_on("a") == []


def test_wait_for_graph_self_edge_ignored():
    graph = WaitForGraph()
    graph.add_wait("a", "a", "lock1", now_us=0)
    assert graph.edges() == []


def test_wait_for_graph_clear_by_resource():
    graph = WaitForGraph()
    graph.add_wait("a", "b", "lock1", now_us=0)
    graph.add_wait("a", "c", "lock2", now_us=0)
    graph.clear_waits("a", resource="lock1")
    assert graph.waiting_on("a") == ["c"]


def test_wait_for_graph_detects_two_cycle():
    graph = WaitForGraph()
    graph.add_wait("a", "b", "lock1", now_us=5)
    assert graph.cycle_warnings == []
    graph.add_wait("b", "a", "lock2", now_us=9)
    assert len(graph.cycle_warnings) == 1
    warning = graph.cycle_warnings[0]
    assert set(warning["nodes"]) == {"a", "b"}
    assert warning["at_us"] == 9


def test_wait_for_graph_detects_longer_cycle_once():
    graph = WaitForGraph()
    graph.add_wait("a", "b", "l1", now_us=1)
    graph.add_wait("b", "c", "l2", now_us=2)
    graph.add_wait("c", "a", "l3", now_us=3)
    assert len(graph.cycle_warnings) == 1
    # Re-adding an edge of the same cycle does not duplicate the warning.
    graph.add_wait("c", "a", "l3", now_us=4)
    assert len(graph.cycle_warnings) == 1


def test_wait_for_graph_warning_cap():
    graph = WaitForGraph(max_warnings=1)
    graph.add_wait("a", "b", "l", now_us=1)
    graph.add_wait("b", "a", "l", now_us=2)
    graph.add_wait("c", "d", "l", now_us=3)
    graph.add_wait("d", "c", "l", now_us=4)
    assert len(graph.cycle_warnings) == 1


# ---------------------------------------------------------------------------
# BlameMatrix
# ---------------------------------------------------------------------------


def test_blame_matrix_accumulates_cells():
    matrix = BlameMatrix()
    matrix.record_wait(2, "lock", 1, 100, 400)
    matrix.record_wait(2, "lock", 1, 500, 600)
    matrix.record_wait(3, "lock", 1, 500, 550)
    cell = matrix.cell(2, "lock", 1)
    assert cell.total_us == 400
    assert cell.waits == 2
    assert matrix.victim_total_us(1) == 450
    assert matrix.aggressor_total_us(2) == 400
    shares = matrix.aggressor_share(1)
    assert shares[2] == pytest.approx(400 / 450)
    assert shares[3] == pytest.approx(50 / 450)


def test_blame_matrix_ignores_empty_intervals():
    matrix = BlameMatrix()
    matrix.record_wait(2, "lock", 1, 100, 100)
    matrix.record_wait(2, "lock", 1, 100, 90)
    assert matrix.cells == {}


def test_blame_matrix_p95_uses_histogram():
    matrix = BlameMatrix()
    for _ in range(99):
        matrix.record_wait(2, "lock", 1, 0, 100)
    matrix.record_wait(2, "lock", 1, 0, 10_000)
    cell = matrix.cell(2, "lock", 1)
    # p95 lands in the 100us bucket, far below the one outlier.
    assert cell.p95_us() < 1_000


def test_blame_matrix_rows_sorted_by_total():
    matrix = BlameMatrix()
    matrix.record_wait(2, "lock", 1, 0, 100)
    matrix.record_wait(3, "lock", 1, 0, 900)
    rows = matrix.rows()
    assert rows[0].aggressor == 3
    assert rows[1].aggressor == 2


def test_blame_matrix_recovered_estimate():
    matrix = BlameMatrix()
    # 1000us blamed over a 10_000us un-penalized prefix: rate 0.1.
    matrix.record_wait(2, "lock", 1, 0, 1_000)
    matrix.note_time(0)
    # A 5_000us penalty window during which only 100us is blamed.
    matrix.record_penalty(2, 5_000, 10_000)
    matrix.record_wait(2, "lock", 1, 11_000, 11_100)
    matrix.note_time(20_000)
    recovered = matrix.recovered_us(2)
    # rate_outside = 1000/15000; estimate = rate * 5000 - 100.
    assert recovered == pytest.approx(1_000 / 15_000 * 5_000 - 100)


def test_blame_matrix_recovered_none_without_penalty():
    matrix = BlameMatrix()
    matrix.record_wait(2, "lock", 1, 0, 1_000)
    assert matrix.recovered_us(2) is None


def test_blame_matrix_to_dict_labels():
    matrix = BlameMatrix()
    matrix.record_wait(2, "lock", 1, 0, 500)
    matrix.record_unknown(250)
    data = matrix.to_dict(labels={1: "victim", 2: "noisy"})
    assert data["total_blamed_us"] == 500
    assert data["unknown_us"] == 250
    [cell] = data["cells"]
    assert cell["aggressor"] == "noisy"
    assert cell["victim"] == "victim"
    assert data["aggressors"][0]["recovered_est_us"] is None


# ---------------------------------------------------------------------------
# AttributionProfiler against a bare bus
# ---------------------------------------------------------------------------


def test_profiler_blames_holder_for_wait():
    bus = TracepointBus()
    profiler = AttributionProfiler().attach(bus)
    bus.point("pbox.create").fire(0, psid=1, tid=11, name="victim")
    bus.point("pbox.create").fire(0, psid=2, tid=22, name="noisy")
    fire_event(bus, 100, 2, "lock", StateEvent.HOLD)
    fire_event(bus, 200, 1, "lock", StateEvent.PREPARE)
    fire_event(bus, 700, 1, "lock", StateEvent.ENTER)
    cell = profiler.matrix.cell(2, "lock", 1)
    assert cell.total_us == 500
    assert cell.waits == 1
    assert profiler.label(2) == "noisy (pbox 2)"


def test_profiler_splits_blame_when_holder_changes_mid_wait():
    bus = TracepointBus()
    profiler = AttributionProfiler().attach(bus)
    fire_event(bus, 0, 2, "lock", StateEvent.HOLD)
    fire_event(bus, 100, 1, "lock", StateEvent.PREPARE)
    # Holder 2 leaves at 400; holder 3 takes over immediately.
    fire_event(bus, 400, 3, "lock", StateEvent.HOLD)
    fire_event(bus, 400, 2, "lock", StateEvent.UNHOLD)
    fire_event(bus, 1_000, 1, "lock", StateEvent.ENTER)
    first = profiler.matrix.cell(2, "lock", 1)
    second = profiler.matrix.cell(3, "lock", 1)
    assert first.total_us == 300     # 100 -> 400
    assert second.total_us == 600    # 400 -> 1000
    assert profiler.matrix.victim_total_us(1) == 900


def test_profiler_shares_blame_across_concurrent_holders():
    bus = TracepointBus()
    profiler = AttributionProfiler().attach(bus)
    fire_event(bus, 0, 2, "lock", StateEvent.HOLD)
    fire_event(bus, 0, 3, "lock", StateEvent.HOLD)
    fire_event(bus, 100, 1, "lock", StateEvent.PREPARE)
    fire_event(bus, 500, 1, "lock", StateEvent.ENTER)
    assert profiler.matrix.cell(2, "lock", 1).total_us == pytest.approx(200)
    assert profiler.matrix.cell(3, "lock", 1).total_us == pytest.approx(200)


def test_profiler_falls_back_to_last_releaser():
    bus = TracepointBus()
    profiler = AttributionProfiler().attach(bus)
    fire_event(bus, 0, 2, "lock", StateEvent.HOLD)
    fire_event(bus, 50, 2, "lock", StateEvent.UNHOLD)
    # Victim defers with nobody holding: blame the last releaser.
    fire_event(bus, 100, 1, "lock", StateEvent.PREPARE)
    fire_event(bus, 400, 1, "lock", StateEvent.ENTER)
    assert profiler.matrix.cell(2, "lock", 1).total_us == 300
    assert profiler.matrix.unknown_us == 0


def test_profiler_unknown_when_no_holder_ever():
    bus = TracepointBus()
    profiler = AttributionProfiler().attach(bus)
    fire_event(bus, 100, 1, "lock", StateEvent.PREPARE)
    fire_event(bus, 400, 1, "lock", StateEvent.ENTER)
    assert profiler.matrix.cells == {}
    assert profiler.matrix.unknown_us == 300


def test_profiler_does_not_self_blame():
    bus = TracepointBus()
    profiler = AttributionProfiler().attach(bus)
    fire_event(bus, 0, 1, "lock", StateEvent.HOLD)
    fire_event(bus, 100, 1, "lock", StateEvent.PREPARE)
    fire_event(bus, 400, 1, "lock", StateEvent.ENTER)
    assert profiler.matrix.cells == {}
    assert profiler.matrix.unknown_us == 300


def test_profiler_thread_graph_from_futex_holders():
    bus = TracepointBus()
    profiler = AttributionProfiler().attach(bus)
    bus.point("futex.wait").fire(10, tid=5, key="m", waiters=1,
                                 holders=[7], holder_psids=[2])
    assert profiler.thread_graph.waiting_on(("thread", 5)) == [
        ("thread", 7)
    ]
    bus.point("futex.wake").fire(20, key="m", requested=1, woken=[5],
                                 waker=7)
    assert profiler.thread_graph.waiting_on(("thread", 5)) == []


def test_profiler_thread_graph_clears_stale_wait_on_new_wait():
    # A timeout wakeup fires no futex.wake; the stale edge must not
    # survive the thread's next wait.
    bus = TracepointBus()
    profiler = AttributionProfiler().attach(bus)
    bus.point("futex.wait").fire(10, tid=5, key="m", waiters=1,
                                 holders=[7], holder_psids=[2])
    bus.point("futex.wait").fire(50, tid=5, key="q", waiters=1,
                                 holders=[9], holder_psids=[3])
    assert profiler.thread_graph.waiting_on(("thread", 5)) == [
        ("thread", 9)
    ]


def test_profiler_counts_unknown_thread_waits():
    bus = TracepointBus()
    profiler = AttributionProfiler().attach(bus)
    bus.point("futex.wait").fire(10, tid=5, key="m", waiters=1,
                                 holders=[], holder_psids=[])
    assert profiler.stats["unknown_thread_waits"] == 1


def test_profiler_detach_stops_recording():
    bus = TracepointBus()
    profiler = AttributionProfiler().attach(bus)
    profiler.detach()
    fire_event(bus, 0, 2, "lock", StateEvent.HOLD)
    fire_event(bus, 100, 1, "lock", StateEvent.PREPARE)
    fire_event(bus, 400, 1, "lock", StateEvent.ENTER)
    assert profiler.stats["events"] == 0
    assert not bus.enabled("pbox.event")


def test_profiler_activate_drops_stale_waits():
    bus = TracepointBus()
    profiler = AttributionProfiler().attach(bus)
    fire_event(bus, 100, 1, "lock", StateEvent.PREPARE)
    bus.point("pbox.activate").fire(200, psid=1)
    fire_event(bus, 400, 1, "lock", StateEvent.ENTER)
    # The PREPARE was abandoned by the new activity; nothing blamed.
    assert profiler.matrix.victim_total_us(1) == 0
    assert profiler.stats["abandoned_waits"] == 1


def test_profiler_report_renders_unknown_and_cycles():
    bus = TracepointBus()
    profiler = AttributionProfiler().attach(bus)
    fire_event(bus, 0, 2, "lock_a", StateEvent.HOLD)
    fire_event(bus, 0, 1, "lock_b", StateEvent.HOLD)
    fire_event(bus, 10, 1, "lock_a", StateEvent.PREPARE)
    fire_event(bus, 20, 2, "lock_b", StateEvent.PREPARE)
    report = profiler.format_report()
    assert "wait-for cycle warnings:" in report
    assert len(profiler.pbox_graph.cycle_warnings) == 1
    data = profiler.to_dict()
    assert data["cycles"][0]["level"] == "pbox"


def test_unknown_label_is_stable():
    profiler = AttributionProfiler()
    assert profiler.label(UNKNOWN) == UNKNOWN


# ---------------------------------------------------------------------------
# End-to-end: the buffer-pool case
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def c17_profile():
    profiler = AttributionProfiler()

    def observer(env):
        profiler.attach(env.kernel.trace)

    run = run_case(get_case("c17"), Solution.PBOX, duration_s=4, seed=1,
                   observer=observer)
    return run, profiler


def test_c17_blames_analytics_for_victim_wait(c17_profile):
    """The acceptance bar: the analytics pBox owns the majority of the
    OLTP victim's blamed wait on the free-blocks resource."""
    run, profiler = c17_profile
    names = {psid: name for psid, name in profiler.pbox_names.items()}
    victims = [psid for psid, name in names.items() if name == "oltp"]
    noisies = [psid for psid, name in names.items() if name == "analytics"]
    assert len(victims) == 1 and len(noisies) == 1
    shares = profiler.matrix.aggressor_share(victims[0])
    assert shares, "no blamed wait recorded for the victim"
    assert shares.get(noisies[0], 0.0) > 0.5
    # The contended resource is the buffer pool's free blocks.
    top = max(
        (cell for cell in profiler.matrix.rows()
         if cell.victim == victims[0]),
        key=lambda cell: cell.total_us,
    )
    assert top.resource == "buf_pool.free_blocks"


def test_c17_attributes_penalties_to_aggressor(c17_profile):
    run, profiler = c17_profile
    noisy = [psid for psid, name in profiler.pbox_names.items()
             if name == "analytics"][0]
    assert profiler.stats["detections"] > 0
    assert profiler.stats["penalty_us"] > 0
    cells = [cell for cell in profiler.matrix.rows()
             if cell.aggressor == noisy and cell.actions > 0]
    assert cells, "no penalty action recorded against analytics"
    recovered = profiler.matrix.recovered_us(noisy)
    assert recovered is not None and recovered > 0


def test_c17_never_blames_unknown_aggressor(c17_profile):
    """Holder identity flows end to end: no cell carries UNKNOWN."""
    _run, profiler = c17_profile
    assert all(cell.aggressor != UNKNOWN
               for cell in profiler.matrix.rows())
    assert profiler.stats["unknown_thread_waits"] == 0


def test_c17_profiler_snapshot_schema(c17_profile):
    _run, profiler = c17_profile
    data = profiler.to_dict()
    assert set(data) >= {"cells", "aggressors", "cycles", "stats",
                         "total_blamed_us", "unknown_us", "window_us"}
    for cell in data["cells"]:
        assert set(cell) == {"aggressor", "aggressor_psid", "resource",
                             "victim", "victim_psid", "blamed_us", "waits",
                             "p95_us", "actions", "penalty_us"}
        assert cell["blamed_us"] >= 0
        assert cell["p95_us"] >= 0
