"""Bisection: localize the first divergent golden event window.

Seeds a *known* divergence -- a perturbing barrier spawns one extra
thread at 750 ms of virtual time, shifting every subsequent event --
and asserts :func:`repro.ckpt.bisect_case` pins the break to exactly
the checkpoint window containing the first perturbed event, with the
actual event lines of that window in the report.
"""

import json
import os

import pytest

from repro.ckpt import bisect_case
from repro.obs.golden import CHECKPOINT_EVERY, canonical_names, run_golden_case
from repro.sim import Compute

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
CASE_ID = "c1"
PERTURB_AT_US = 750_000


def _load_golden(case_id):
    with open(os.path.join(GOLDEN_DIR, case_id + ".json")) as handle:
        return json.load(handle)


def test_bisect_reports_match_for_clean_run():
    golden = _load_golden(CASE_ID)
    report = bisect_case(CASE_ID, golden,
                         duration_s=golden["duration_s"],
                         seed=golden["seed"])
    assert report["divergent"] is False
    assert report["digest"] == golden["digest"]
    assert report["events"] == golden["events"]


@pytest.mark.slow
def test_bisect_localizes_seeded_divergence():
    golden = _load_golden(CASE_ID)
    counter = {"events": 0, "first_divergent": None}

    def _count(name, time_us, fields):
        counter["events"] += 1

    def observer(env):
        env.kernel.trace.subscribe_all(
            _count, names=canonical_names(env.kernel.trace))

    def _intruder():
        yield Compute(us=1_000)

    def perturb_driver(env):
        env.kernel.run(until_us=PERTURB_AT_US)
        counter["first_divergent"] = counter["events"]
        env.kernel.spawn(_intruder, name="bisect-intruder")
        env.kernel.run(until_us=env.duration_us)

    perturbed = run_golden_case(
        CASE_ID, golden["duration_s"], golden["seed"],
        observer=observer, driver=perturb_driver)
    assert perturbed["digest"] != golden["digest"]
    assert counter["first_divergent"] is not None

    report = bisect_case(CASE_ID, perturbed,
                         duration_s=golden["duration_s"],
                         seed=golden["seed"])
    assert report["divergent"] is True
    expected_window = counter["first_divergent"] // CHECKPOINT_EVERY
    assert report["window_index"] == expected_window
    assert report["start_event"] == expected_window * CHECKPOINT_EVERY
    assert report["window_events"] == CHECKPOINT_EVERY
    assert report["expected_digest"] == perturbed["digest"]
    assert report["actual_digest"] == golden["digest"]
    assert report["lines"], "divergent window replay captured no events"
    first_index = int(report["lines"][0].split()[0])
    assert first_index == report["start_event"]
