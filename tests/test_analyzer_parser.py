"""Unit tests for the mini-C frontend."""

import pytest

from repro.analyzer.cfg import CFG, natural_loops
from repro.analyzer.parser import ParseError, parse_module


def test_globals_and_functions_registered():
    module = parse_module("""
        int shared_a, shared_b;
        void f(int x) {
            shared_a = shared_a + x;
        }
    """)
    assert module.globals == {"shared_a", "shared_b"}
    assert "f" in module.functions
    assert module.functions["f"].params == ("x",)


def test_call_statement_lowered():
    module = parse_module("""
        void f(int x) {
            do_work(x);
        }
    """)
    calls = module.functions["f"].call_instructions()
    assert len(calls) == 1
    _block, instr = calls[0]
    assert instr.callee == "do_work"
    assert instr.uses == ("x",)


def test_nested_call_arguments():
    module = parse_module("""
        void f(int x) {
            outer(inner(x), x);
        }
    """)
    callees = [i.callee for _b, i in module.functions["f"].call_instructions()]
    assert callees == ["inner", "outer"]


def test_if_produces_diamond():
    module = parse_module("""
        int g;
        void f(int x) {
            if (g < x) {
                g = g + 1;
            } else {
                g = g - 1;
            }
            return;
        }
    """)
    function = module.functions["f"]
    cfg = CFG(function)
    entry_succs = cfg.succs[function.entry_label]
    assert len(entry_succs) == 2
    assert natural_loops(cfg) == []


def test_while_produces_loop_with_condition_uses():
    module = parse_module("""
        int g;
        void f(int x) {
            while (g < x) {
                step(x);
            }
        }
    """)
    function = module.functions["f"]
    cfg = CFG(function)
    loops = natural_loops(cfg)
    assert len(loops) == 1
    header, body = loops[0]
    assert set(function.blocks[header].branch_uses()) == {"g", "x"}


def test_for_infinite_loop_with_break():
    module = parse_module("""
        int g;
        void f(int x) {
            for (;;) {
                if (g < x) {
                    break;
                }
                sleep(1);
            }
            return;
        }
    """)
    function = module.functions["f"]
    cfg = CFG(function)
    loops = natural_loops(cfg)
    assert len(loops) == 1
    _header, body = loops[0]
    # The guarding if's condition is inside the loop body.
    cond_vars = set()
    for label in body:
        cond_vars.update(function.blocks[label].branch_uses())
    assert {"g", "x"} <= cond_vars


def test_figure9_shape_parses():
    """The paper's Figure 9 structure round-trips through the parser."""
    module = parse_module("""
        int n_active, concurrency_limit;
        void srv_conc_enter(int trx) {
            for (;;) {
                if (n_active < concurrency_limit) {
                    n_active = n_active + 1;
                    return;
                }
                os_thread_sleep(100);
            }
        }
    """)
    function = module.functions["srv_conc_enter"]
    callees = [i.callee for _b, i in function.call_instructions()]
    assert callees == ["os_thread_sleep"]
    assert len(natural_loops(CFG(function))) == 1


def test_continue_statement():
    module = parse_module("""
        int g;
        void f(int x) {
            while (g < x) {
                if (g < 1) {
                    continue;
                }
                work(x);
            }
        }
    """)
    function = module.functions["f"]
    cfg = CFG(function)
    assert len(natural_loops(cfg)) == 1


def test_local_declaration_with_initializer():
    module = parse_module("""
        int g;
        void f(int x) {
            int local = g + x;
            use(local);
        }
    """)
    function = module.functions["f"]
    assert "local" in function.locals


def test_break_outside_loop_is_error():
    with pytest.raises(ParseError):
        parse_module("void f(int x) { break; }")


def test_unterminated_block_is_error():
    with pytest.raises(ParseError):
        parse_module("void f(int x) { work(x);")


def test_comments_are_skipped():
    module = parse_module("""
        // a line comment
        int g; /* block comment */
        void f(int x) {
            g = g + 1; // trailing
        }
    """)
    assert "g" in module.globals


def test_duplicate_function_rejected():
    with pytest.raises(ValueError):
        parse_module("void f(int x) { } void f(int y) { }")
