"""Regression tests for PBoxTracer capacity accounting and key naming.

Two historical bugs:

- a flood of cheap ``event`` records could evict the rare
  detection/action/penalty records from the shared ring buffer;
- ``_key_name`` crashed the ranking helpers on tuple keys with
  unhashable parts and rendered ``None`` keys as the string "None".
"""

from repro.core import IsolationRule, PBoxManager, StateEvent
from repro.core.trace import PBoxTracer
from repro.sim import Kernel, Sleep


def test_event_flood_does_not_evict_rich_records():
    tracer = PBoxTracer(capacity=8, record_events=True)
    kernel = Kernel(cores=1)
    manager = PBoxManager(kernel, tracer=tracer)
    pbox = manager.create(IsolationRule(50))
    victim = manager.create(IsolationRule(50))
    manager.activate(pbox)
    # Rare, valuable records first...
    tracer.on_detection(10, pbox, victim, "res")
    tracer.on_action(11, pbox, victim, "res", 5_000)
    tracer.on_penalty_served(12, pbox, 5_000)
    # ...then a flood of state events far beyond the capacity.
    for index in range(100):
        manager.update(pbox, "k%d" % index, StateEvent.HOLD)
    kinds = [record.kind for record in tracer.records]
    assert "detection" in kinds
    assert "action" in kinds
    assert "penalty" in kinds
    # Both rings stay bounded.
    assert kinds.count("event") <= tracer.capacity
    assert len(tracer.records) <= 2 * tracer.capacity


def test_records_merged_in_time_order():
    tracer = PBoxTracer(capacity=100, record_events=True)
    kernel = Kernel(cores=1)
    manager = PBoxManager(kernel, tracer=tracer)
    pbox = manager.create(IsolationRule(50))
    victim = manager.create(IsolationRule(50))
    tracer.on_event(5, pbox, "a", StateEvent.HOLD)
    tracer.on_detection(3, pbox, victim, "a")
    tracer.on_event(1, pbox, "b", StateEvent.PREPARE)
    times = [record.time_us for record in tracer.records]
    assert times == sorted(times)


def test_dropped_counter_tracks_evictions():
    tracer = PBoxTracer(capacity=4, record_events=True)
    kernel = Kernel(cores=1)
    manager = PBoxManager(kernel, tracer=tracer)
    pbox = manager.create(IsolationRule(50))
    for index in range(10):
        manager.update(pbox, "k%d" % index, StateEvent.HOLD)
    assert tracer.dropped["event"] == 6
    assert tracer.dropped["detection"] == 0


def test_key_name_handles_none_and_tuples():
    assert PBoxTracer._key_name(None) == "<none>"
    assert PBoxTracer._key_name("lock") == "lock"
    assert PBoxTracer._key_name(("table", "idx")) == "(table, idx)"

    class Named:
        name = "wal_insert_lock"

    assert PBoxTracer._key_name(Named()) == "wal_insert_lock"

    class EmptyName:
        name = ""

        def __str__(self):
            return "anon"

    # An empty name attribute must not shadow the fallback rendering.
    assert PBoxTracer._key_name(EmptyName()) == "anon"


def test_action_report_with_exotic_keys():
    tracer = PBoxTracer()
    kernel = Kernel(cores=1)
    manager = PBoxManager(kernel, tracer=tracer)
    noisy = manager.create(IsolationRule(50))
    victim = manager.create(IsolationRule(50))
    tracer.on_action(1, noisy, victim, None, 100)
    tracer.on_action(2, noisy, victim, ("buf", 7), 100)
    ranked = dict(tracer.top_contended_resources())
    assert ranked["<none>"] == 1
    assert ranked["(buf, 7)"] == 1
    report = tracer.format_report()
    assert "(buf, 7)" in report


def test_tracer_attach_detach_roundtrip():
    kernel = Kernel(cores=4)
    tracer = PBoxTracer()
    manager = PBoxManager(kernel)  # no tracer at construction
    tracer.attach(kernel.trace)
    pbox = manager.create(IsolationRule(50))
    manager.activate(pbox)

    def body():
        manager.update(pbox, "k", StateEvent.HOLD)
        yield Sleep(us=100)
        manager.update(pbox, "k", StateEvent.UNHOLD)

    kernel.spawn(body, name="t")
    kernel.run(until_us=10_000)
    assert tracer.event_counts["hold"] == 1
    tracer.detach()
    manager.update(pbox, "k2", StateEvent.HOLD)
    assert tracer.event_counts["hold"] == 1  # detached: no new counts


def test_reattach_is_idempotent():
    kernel = Kernel(cores=1)
    tracer = PBoxTracer()
    manager = PBoxManager(kernel, tracer=tracer)
    tracer.attach(kernel.trace)  # second attach must not double-count
    pbox = manager.create(IsolationRule(50))
    manager.update(pbox, "k", StateEvent.HOLD)
    assert tracer.event_counts["hold"] == 1
