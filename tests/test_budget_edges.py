"""Penalty-budget edge cases: trim/release boundaries and construction."""

import pytest

from repro.core.budget import PenaltyBudget


def test_reserve_exactly_at_cap_is_a_full_grant():
    budget = PenaltyBudget(cap_us=10_000)
    assert budget.reserve(10_000) == 10_000
    assert budget.outstanding_us == 10_000
    # Exactly consuming the headroom is neither a trim nor a denial.
    assert budget.stats["trimmed"] == 0
    assert budget.stats["denied"] == 0
    # ...but the very next reservation is refused outright.
    assert budget.reserve(1) == 0
    assert budget.stats["denied"] == 1


def test_reserve_beyond_headroom_is_trimmed_to_remainder():
    budget = PenaltyBudget(cap_us=10_000)
    assert budget.reserve(7_000) == 7_000
    assert budget.reserve(7_000) == 3_000
    assert budget.outstanding_us == 10_000
    assert budget.stats["trimmed"] == 1
    assert budget.stats["reserved_us"] == 10_000
    assert budget.stats["peak_outstanding_us"] == 10_000


def test_release_after_clamp_saturates_at_zero():
    # Injected penalties bypass reserve(), so a release can exceed the
    # outstanding total; accounting must saturate, not go negative.
    budget = PenaltyBudget(cap_us=10_000)
    budget.reserve(4_000)
    budget.release(9_000)
    assert budget.outstanding_us == 0
    assert budget.stats["released_us"] == 4_000
    # Releasing against an empty budget is a no-op.
    budget.release(1_000)
    assert budget.outstanding_us == 0
    assert budget.stats["released_us"] == 4_000
    # Headroom is fully restored.
    assert budget.reserve(10_000) == 10_000


def test_zero_or_negative_cap_is_rejected():
    with pytest.raises(ValueError):
        PenaltyBudget(cap_us=0)
    with pytest.raises(ValueError):
        PenaltyBudget(cap_us=-5)


def test_unlimited_budget_is_pure_accounting():
    budget = PenaltyBudget(cap_us=None)
    assert budget.reserve(1_000_000) == 1_000_000
    assert budget.stats["denied"] == 0
    assert budget.stats["trimmed"] == 0
    assert budget.outstanding_us == 1_000_000


def test_non_positive_amounts_are_ignored():
    budget = PenaltyBudget(cap_us=10_000)
    assert budget.reserve(0) == 0
    assert budget.reserve(-3) == 0
    budget.release(0)
    budget.release(-3)
    assert budget.outstanding_us == 0
    assert budget.stats["reserved_us"] == 0
    assert budget.stats["released_us"] == 0


def test_snapshot_state_is_json_safe_copy():
    budget = PenaltyBudget(cap_us=10_000)
    budget.reserve(2_500)
    walk = budget.snapshot_state()
    assert walk == {"cap_us": 10_000, "outstanding_us": 2_500,
                    "stats": budget.stats}
    walk["stats"]["reserved_us"] = -1
    assert budget.stats["reserved_us"] == 2_500
