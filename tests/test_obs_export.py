"""Tests for the span recorder and Chrome trace-event exporter."""

import json

import pytest

from repro.core import IsolationRule, PBoxManager, StateEvent
from repro.core.trace import PBoxTracer
from repro.obs import (
    SpanRecorder,
    chrome_trace,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim import Kernel, Sleep


def run_interference_scenario():
    """Two pBoxes, one detection -> penalty chain, spans recorded."""
    kernel = Kernel(cores=4)
    recorder = SpanRecorder()
    recorder.attach(kernel.trace)
    manager = PBoxManager(kernel)
    rule = IsolationRule(isolation_level=50)

    def noisy():
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.HOLD)
        yield Sleep(us=50_000)
        manager.update(pbox, "res", StateEvent.UNHOLD)
        manager.freeze(pbox)
        yield Sleep(us=1_000)

    def victim():
        yield Sleep(us=1_000)
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.PREPARE)
        yield Sleep(us=60_000)
        manager.update(pbox, "res", StateEvent.ENTER)
        manager.freeze(pbox)

    kernel.spawn(noisy, name="noisy")
    kernel.spawn(victim, name="victim")
    kernel.run(until_us=300_000)
    return recorder, manager


def test_recorder_builds_thread_and_pbox_tracks():
    recorder, manager = run_interference_scenario()
    assert set(recorder.thread_names.values()) >= {"noisy", "victim"}
    assert recorder.pbox_ids == {1, 2}
    assert manager.stats["detections"] >= 1
    span_names = {name for _track, _tid, name, *_rest in recorder.spans}
    assert "running" in span_names            # CPU slices
    assert "activity" in span_names           # activate -> freeze
    assert any(name.startswith("hold:") for name in span_names)
    assert any(name.startswith("defer:") for name in span_names)
    assert "pbox penalty" in span_names       # injected delay


def test_recorder_pairs_detection_and_penalty_flows():
    recorder, _manager = run_interference_scenario()
    assert len(recorder.flow_starts) >= 1
    assert len(recorder.paired_flows()) >= 1
    instant_names = {name for _t, _tid, name, *_rest in recorder.instants}
    assert {"detect", "action"} <= instant_names


def test_exporter_event_schema():
    recorder, _manager = run_interference_scenario()
    events = chrome_trace_events(recorder)
    summary = validate_chrome_trace(events)
    assert summary["by_phase"]["M"] >= 4  # 2 processes + threads + pboxes
    assert summary["by_phase"]["X"] > 0
    assert summary["by_phase"]["i"] >= 2
    assert summary["flows_paired"] >= 1
    for event in events:
        assert set(event) >= {"ph", "pid", "tid"}
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0
        if event["ph"] in ("s", "f"):
            assert event["cat"] == "pbox-flow"
    # Flow starts and finishes use matched ids, finishes bind to the
    # enclosing slice (bp: "e").
    starts = {e["id"] for e in events if e["ph"] == "s"}
    ends = {e["id"] for e in events if e["ph"] == "f"}
    assert starts == ends
    assert all(e.get("bp") == "e" for e in events if e["ph"] == "f")


def test_exporter_trace_object_and_file_roundtrip(tmp_path):
    recorder, _manager = run_interference_scenario()
    obj = chrome_trace(recorder, case_id="manual")
    assert obj["otherData"]["case"] == "manual"
    assert obj["displayTimeUnit"] == "ms"
    path = write_chrome_trace(recorder, str(tmp_path / "t.json"),
                              case_id="manual")
    with open(path) as handle:
        loaded = json.load(handle)
    assert validate_chrome_trace(loaded)["events"] == len(obj["traceEvents"])


def test_exporter_drops_unpaired_flow_events():
    # A detection whose penalty never landed leaves a dangling flow
    # start; the exporter must omit it so Perfetto's importer (which
    # rejects finishes without starts and warns on the reverse) always
    # gets matched pairs.
    recorder, _manager = run_interference_scenario()
    recorder.flow_starts.append(("thread", 1, "dangling-flow", 123))
    events = chrome_trace_events(recorder)
    flow_ids = [e["id"] for e in events if e["ph"] in ("s", "f")]
    assert "dangling-flow" not in flow_ids
    assert validate_chrome_trace(events)["flows_paired"] >= 1


def test_flow_pairs_share_id_and_are_causally_ordered():
    recorder, _manager = run_interference_scenario()
    events = chrome_trace_events(recorder)
    starts = {e["id"]: e for e in events if e["ph"] == "s"}
    ends = {e["id"]: e for e in events if e["ph"] == "f"}
    assert starts and set(starts) == set(ends)
    for flow, start in starts.items():
        end = ends[flow]
        assert start["name"] == end["name"] == "detection->penalty"
        # Detection happens at or before the penalty it caused.
        assert start["ts"] <= end["ts"]


def test_validate_rejects_malformed_traces():
    with pytest.raises(ValueError):
        validate_chrome_trace("nope")
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": "nope"})
    with pytest.raises(ValueError):
        validate_chrome_trace([{"ph": "X", "pid": 1, "tid": 1,
                                "name": "a", "ts": 0}])  # missing dur
    with pytest.raises(ValueError):
        validate_chrome_trace([{"ph": "i", "pid": 1, "tid": 1,
                                "name": "a"}])  # missing ts
    with pytest.raises(ValueError):
        # Flow finish without a start.
        validate_chrome_trace([
            {"ph": "f", "pid": 1, "tid": 1, "name": "fl", "ts": 0, "id": 9},
        ])


def test_recorder_truncates_at_cap():
    recorder = SpanRecorder(max_events=5)
    for index in range(10):
        recorder._span("thread", 1, "s%d" % index, "test", index, index + 1)
    assert recorder.truncated is True
    assert recorder.event_count == 5
    obj = chrome_trace(recorder)
    assert "truncated" in obj["otherData"]


def test_recorder_detach_stops_recording():
    kernel = Kernel(cores=1)
    recorder = SpanRecorder()
    recorder.attach(kernel.trace)
    recorder.detach()
    assert not any(kernel.trace.enabled(n) for n in kernel.trace.names())


def test_recorder_and_tracer_coexist_on_one_bus():
    kernel = Kernel(cores=4)
    recorder = SpanRecorder().attach(kernel.trace)
    tracer = PBoxTracer()
    manager = PBoxManager(kernel, tracer=tracer)
    rule = IsolationRule(isolation_level=50)

    def body():
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "k", StateEvent.HOLD)
        yield Sleep(us=1_000)
        manager.update(pbox, "k", StateEvent.UNHOLD)
        manager.freeze(pbox)

    kernel.spawn(body, name="t")
    kernel.run(until_us=10_000)
    assert tracer.event_counts["hold"] == 1
    assert recorder.pbox_ids == {1}
