"""Unit tests for the run queue's picking rules."""

from repro.sim.scheduler import Core, RunQueue
from repro.sim.thread import SimThread, ThreadState


def make_thread(name, affinity=None):
    def body():
        yield

    return SimThread(body, name=name, affinity=affinity)


def make_queue(now_us=0):
    queue = RunQueue()
    queue._now = lambda: now_us
    return queue


def test_fifo_order():
    queue = make_queue()
    first, second = make_thread("a"), make_thread("b")
    queue.push(first)
    queue.push(second)
    core = Core(0)
    assert queue.pick_for_core(core) is first
    assert queue.pick_for_core(core) is second
    assert queue.pick_for_core(core) is None


def test_push_front_takes_priority():
    queue = make_queue()
    back, front = make_thread("back"), make_thread("front")
    queue.push(back)
    queue.push_front(front)
    assert queue.pick_for_core(Core(0)) is front


def test_push_sets_ready_state():
    queue = make_queue()
    thread = make_thread("t")
    queue.push(thread)
    assert thread.state is ThreadState.READY


def test_affinity_respected():
    queue = make_queue()
    pinned = make_thread("pinned", affinity={1})
    free = make_thread("free")
    queue.push(pinned)
    queue.push(free)
    core0 = Core(0)
    # pinned cannot run on core 0; free is picked instead.
    assert queue.pick_for_core(core0) is free
    core1 = Core(1)
    assert queue.pick_for_core(core1) is pinned


def test_reserved_core_only_accepts_matching_tag():
    queue = make_queue()
    tagged = make_thread("tagged")
    tagged.darc_tag = "short"
    untagged = make_thread("untagged")
    queue.push(untagged)
    queue.push(tagged)
    reserved = Core(0)
    reserved.reserved_for = "short"
    assert queue.pick_for_core(reserved) is tagged
    assert queue.pick_for_core(reserved) is None  # untagged stays queued
    normal = Core(1)
    assert queue.pick_for_core(normal) is untagged


def test_demoted_thread_skipped_while_normal_available():
    queue = make_queue(now_us=1_000)
    demoted = make_thread("demoted")
    demoted.demoted_until_us = 5_000
    normal = make_thread("normal")
    queue.push(demoted)
    queue.push(normal)
    assert queue.pick_for_core(Core(0)) is normal
    # Only the demoted thread remains: it still runs (no starvation).
    assert queue.pick_for_core(Core(0)) is demoted


def test_demotion_lapses_with_time():
    queue = make_queue(now_us=10_000)
    thread = make_thread("t")
    thread.demoted_until_us = 5_000  # already expired
    other = make_thread("o")
    queue.push(thread)
    queue.push(other)
    # Expired demotion: plain FIFO applies.
    assert queue.pick_for_core(Core(0)) is thread


def test_remove_from_queue():
    queue = make_queue()
    thread = make_thread("t")
    queue.push(thread)
    assert queue.remove(thread) is True
    assert queue.remove(thread) is False
    assert len(queue) == 0


def test_threads_snapshot():
    queue = make_queue()
    threads = [make_thread("t%d" % i) for i in range(3)]
    for thread in threads:
        queue.push(thread)
    assert queue.threads() == threads
