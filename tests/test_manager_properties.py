"""Property-based tests: the manager is robust to arbitrary event input.

The mistake-tolerance experiment (Section 6.8) depends on the manager
surviving *any* interleaving of state events, including unmatched and
duplicated ones.  These tests feed randomly generated event sequences
through the full lifecycle and assert structural invariants.
"""

from hypothesis import given, settings, strategies as st

from repro.core import IsolationRule, PBoxManager, StateEvent
from repro.sim import Kernel, Sleep

SETTINGS = settings(max_examples=40, deadline=None)

EVENTS = [StateEvent.PREPARE, StateEvent.ENTER, StateEvent.HOLD,
          StateEvent.UNHOLD]

# One scripted step: (pbox index, key index, event index) or a lifecycle
# op encoded as event index >= 4 (activate / freeze).
step_strategy = st.tuples(
    st.integers(0, 2),    # pbox
    st.integers(0, 2),    # resource key
    st.integers(0, 5),    # 0-3 events, 4 activate, 5 freeze
    st.integers(0, 2_000),  # virtual-time gap before the step
)


def run_script(steps):
    kernel = Kernel(cores=2)
    manager = PBoxManager(kernel)
    rule = IsolationRule(isolation_level=50)

    def driver():
        boxes = [manager.create(rule) for _ in range(3)]
        for pbox in boxes:
            manager.activate(pbox)
        for pbox_index, key_index, op, gap_us in steps:
            if gap_us:
                yield Sleep(us=gap_us)
            pbox = boxes[pbox_index]
            key = "res-%d" % key_index
            if op < 4:
                manager.update(pbox, key, EVENTS[op])
            elif op == 4:
                manager.activate(pbox)
            else:
                manager.freeze(pbox)
        for pbox in boxes:
            manager.release(pbox)

    kernel.spawn(driver)
    kernel.run(until_us=60_000_000)
    return kernel, manager


@SETTINGS
@given(st.lists(step_strategy, max_size=60))
def test_manager_survives_arbitrary_event_sequences(steps):
    kernel, manager = run_script(steps)
    # After releasing every pBox, no bookkeeping leaks remain.
    assert manager.pboxes() == []
    assert manager.competitor_map == {}


@SETTINGS
@given(st.lists(step_strategy, max_size=60))
def test_defer_time_never_negative(steps):
    kernel = Kernel(cores=2)
    manager = PBoxManager(kernel)
    rule = IsolationRule(isolation_level=50)
    observed = []

    def driver():
        boxes = [manager.create(rule) for _ in range(3)]
        for pbox in boxes:
            manager.activate(pbox)
        for pbox_index, key_index, op, gap_us in steps:
            if gap_us:
                yield Sleep(us=gap_us)
            pbox = boxes[pbox_index]
            if op < 4:
                manager.update(pbox, "res-%d" % key_index, EVENTS[op])
            elif op == 4:
                manager.activate(pbox)
            else:
                manager.freeze(pbox)
            observed.append(pbox.defer_time_us)
        return None

    kernel.spawn(driver)
    kernel.run(until_us=60_000_000)
    assert all(value >= 0 for value in observed)


@SETTINGS
@given(st.lists(step_strategy, max_size=60))
def test_penalties_only_target_past_holders(steps):
    """Whatever the input, only pBoxes that issued HOLD can be penalized."""
    kernel = Kernel(cores=2)
    manager = PBoxManager(kernel)
    rule = IsolationRule(isolation_level=50)
    held_ever = set()

    def driver():
        boxes = [manager.create(rule) for _ in range(3)]
        for pbox in boxes:
            manager.activate(pbox)
        for pbox_index, key_index, op, gap_us in steps:
            if gap_us:
                yield Sleep(us=gap_us)
            pbox = boxes[pbox_index]
            if op < 4:
                if EVENTS[op] is StateEvent.HOLD:
                    held_ever.add(pbox.psid)
                manager.update(pbox, "res-%d" % key_index, EVENTS[op])
            elif op == 4:
                manager.activate(pbox)
            else:
                manager.freeze(pbox)
        for pbox in boxes:
            if pbox.penalties_received:
                assert pbox.psid in held_ever

    kernel.spawn(driver)
    kernel.run(until_us=60_000_000)


@SETTINGS
@given(st.lists(step_strategy, max_size=40))
def test_runs_are_deterministic(steps):
    first_kernel, first = run_script(steps)
    second_kernel, second = run_script(steps)
    assert first.stats == second.stats
    assert first_kernel.now_us == second_kernel.now_us
