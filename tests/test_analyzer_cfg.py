"""Unit tests for CFG analyses: dominators, post-dominators, loops."""

import pytest

from repro.analyzer.cfg import (
    CFG,
    dominates,
    dominators,
    innermost_loop_containing,
    natural_loops,
    post_dominators,
)
from repro.analyzer.ir import Function, Instr


def diamond_function():
    """entry -> (left | right) -> join -> exit."""
    function = Function("diamond")
    entry = function.new_block("entry")
    entry.add(Instr("branch", uses=("c",)))
    entry.successors = ["left", "right"]
    function.new_block("left").successors = ["join"]
    function.new_block("right").successors = ["join"]
    join = function.new_block("join")
    join.successors = ["exit"]
    exit_block = function.new_block("exit")
    exit_block.add(Instr("return"))
    return function


def loop_function():
    """entry -> header <-> body, header -> exit."""
    function = Function("looper")
    function.new_block("entry").successors = ["header"]
    header = function.new_block("header")
    header.add(Instr("branch", uses=("n",)))
    header.successors = ["body", "exit"]
    function.new_block("body").successors = ["header"]
    function.new_block("exit").add(Instr("return"))
    return function


def test_dominators_diamond():
    cfg = CFG(diamond_function())
    idom = dominators(cfg)
    assert idom["join"] == "entry"      # neither branch dominates the join
    assert idom["left"] == "entry"
    assert idom["exit"] == "join"
    assert dominates(idom, "entry", "exit")
    assert not dominates(idom, "left", "exit")


def test_post_dominators_diamond():
    cfg = CFG(diamond_function())
    pdom = post_dominators(cfg)
    # join post-dominates everything before it.
    assert dominates(pdom, "join", "entry")
    assert dominates(pdom, "exit", "entry")
    assert not dominates(pdom, "left", "entry")


def test_natural_loop_detection():
    cfg = CFG(loop_function())
    loops = natural_loops(cfg)
    assert len(loops) == 1
    header, body = loops[0]
    assert header == "header"
    assert body == {"header", "body"}


def test_innermost_loop_nested():
    function = Function("nested")
    function.new_block("entry").successors = ["outer"]
    outer = function.new_block("outer")
    outer.add(Instr("branch", uses=("a",)))
    outer.successors = ["inner", "exit"]
    inner = function.new_block("inner")
    inner.add(Instr("branch", uses=("b",)))
    inner.successors = ["inner_body", "outer"]
    function.new_block("inner_body").successors = ["inner"]
    function.new_block("exit").add(Instr("return"))
    cfg = CFG(function)
    loops = natural_loops(cfg)
    assert len(loops) == 2
    body = innermost_loop_containing(loops, "inner_body")
    assert body == {"inner", "inner_body"}


def test_no_loops_in_diamond():
    cfg = CFG(diamond_function())
    assert natural_loops(cfg) == []


def test_unreachable_block_is_ignored():
    function = Function("unreachable")
    function.new_block("entry").add(Instr("return"))
    function.new_block("island").add(Instr("return"))
    cfg = CFG(function)
    idom = dominators(cfg)
    assert "island" not in idom


def test_undefined_successor_rejected():
    function = Function("bad")
    function.new_block("entry").successors = ["nowhere"]
    with pytest.raises(ValueError):
        CFG(function)


def test_infinite_loop_has_post_dominators():
    """A function that never returns still gets a well-formed pdom tree."""
    function = Function("spin")
    function.new_block("entry").successors = ["header"]
    header = function.new_block("header")
    header.add(Instr("branch"))
    header.successors = ["header"]
    cfg = CFG(function)
    pdom = post_dominators(cfg)
    # The virtual exit reaches the spin through the exit_labels fallback
    # (blocks without successors); entry must be mapped.
    assert CFG.VIRTUAL_EXIT in pdom
