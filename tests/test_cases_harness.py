"""Integration tests for the case harness and the 16 registered cases.

Full evaluations live in benchmarks/; these tests run shortened
simulations to verify the machinery: every case builds, produces victim
samples, shows interference, and pBox reduces it where the paper says
it should.
"""

import pytest

from repro.cases import ALL_CASES, Solution, evaluate_case, get_case, run_case


def test_registry_has_all_cases():
    # The 16 Table 3 cases, c17 (the Figure 2 buffer-pool motivating
    # case), and the beyond-the-paper extensions: c18/c20 (FaaS churn
    # under cfs/eevdf) and c19 (the scaled-up cache tier).
    assert sorted(ALL_CASES, key=lambda c: int(c[1:])) == [
        "c%d" % i for i in range(1, 21)
    ]


def test_get_case_unknown_id():
    with pytest.raises(KeyError):
        get_case("c99")


def test_case_metadata_matches_table3():
    apps = {
        "c1": "mysql", "c5": "mysql", "c6": "postgresql",
        "c10": "postgresql", "c11": "apache", "c14": "varnish",
        "c16": "memcached",
    }
    for case_id, app in apps.items():
        case = get_case(case_id)
        assert case.app_name == app
        assert case.paper_interference_level > 0
        assert case.virtual_resource


def test_run_case_produces_samples():
    case = get_case("c1")
    run = run_case(case, Solution.NONE, duration_s=3)
    assert run.victim_mean_us > 0
    assert run.victim_p95_us >= run.victim_mean_us * 0.1
    assert run.noisy_mean_us is not None


def test_no_interference_run_skips_noisy():
    case = get_case("c1")
    run = run_case(case, Solution.NO_INTERFERENCE, duration_s=3)
    assert run.env.noisy_recorders == []


def test_interference_visible_in_c1(evaluation_cache):
    evaluation = evaluation_cache.evaluate("c1", solutions=(), duration_s=3)
    assert evaluation.interference_level > 2.0


def test_pbox_mitigates_c1(evaluation_cache):
    evaluation = evaluation_cache.evaluate(
        "c1", solutions=(Solution.PBOX,), duration_s=3)
    assert evaluation.reduction_ratio(Solution.PBOX) > 0.5
    assert evaluation.normalized_latency(Solution.PBOX) < 0.5


def test_pbox_mitigates_event_driven_c14(evaluation_cache):
    evaluation = evaluation_cache.evaluate(
        "c14", solutions=(Solution.PBOX,), duration_s=3)
    assert evaluation.interference_level > 5.0
    assert evaluation.reduction_ratio(Solution.PBOX) > 0.5


def test_pbox_runs_are_deterministic():
    case = get_case("c3")
    first = run_case(case, Solution.PBOX, duration_s=3)
    second = run_case(case, Solution.PBOX, duration_s=3)
    assert first.victim_mean_us == second.victim_mean_us
    assert first.manager.stats == second.manager.stats


def test_different_seeds_differ():
    case = get_case("c3")
    first = run_case(case, Solution.NONE, duration_s=3, seed=1)
    second = run_case(case, Solution.NONE, duration_s=3, seed=2)
    assert first.victim_mean_us != second.victim_mean_us


def test_fixed_penalty_engine_plumbs_through():
    from repro.core import FixedPenalty

    case = get_case("c1")
    engine = FixedPenalty(10_000)
    run = run_case(case, Solution.PBOX, duration_s=3, penalty_engine=engine)
    assert run.manager.penalty_engine is engine
    assert engine.action_count() > 0
    assert all(length == 10_000 for length in engine.lengths_us())


def test_isolation_level_knob_reaches_pboxes():
    case = get_case("c1")
    run = run_case(case, Solution.PBOX, duration_s=3, isolation_level=120)
    goals = {pb.rule.isolation_level for pb in run.manager.pboxes()
             if not pb.shared_thread}
    # Client pBoxes carry the requested level (background ones are looser).
    assert 120 in goals


def test_call_filter_drop_reaches_runtime():
    case = get_case("c1")
    dropped = {"count": 0}

    def drop_all(key, event):
        dropped["count"] += 1
        return False

    run = run_case(case, Solution.PBOX, duration_s=3, call_filter=drop_all)
    assert dropped["count"] > 0
    assert run.manager.stats["events"] == 0


def test_baseline_policies_attach_per_solution():
    case = get_case("c3")
    for solution, policy_name in [
        (Solution.CGROUP, "cgroup"),
        (Solution.PARTIES, "parties"),
        (Solution.RETRO, "retro"),
        (Solution.DARC, "darc"),
    ]:
        run = run_case(case, solution, duration_s=2, baseline_us=300)
        assert run.env.policy.name == policy_name


def test_evaluate_case_feeds_measured_baseline_to_policies():
    evaluation = evaluate_case(
        get_case("c3"), solutions=(Solution.PARTIES,), duration_s=3
    )
    policy = evaluation.solution_runs[Solution.PARTIES].env.policy
    assert policy.slo_by_group["victim"] == pytest.approx(
        evaluation.to_us * 1.5
    )


@pytest.mark.parametrize("case_id", sorted(ALL_CASES))
def test_every_case_builds_and_measures(case_id):
    # 1.5 s clears the 1 s warmup; this only checks the machinery runs
    # and measures, the per-case floors live in test_cases_detail.py.
    case = get_case(case_id)
    run = run_case(case, Solution.NONE, duration_s=1.5)
    assert run.victim_mean_us > 0
