"""Resume-guard smoke: the CI-sized checkpoint/restore contract.

A two-case slice of the corpus-wide restore-equality suite plus one
crash-resume leg, small enough for the ``resume-guard`` CI job (and
``make resume-guard``) to run on every push: checkpoint a run mid-way,
restore it, and require the completed stream's digest to equal the
committed golden; then kill a supervised worker mid-run and require the
resumed run to converge on the same bytes.
"""

import json
import os

import pytest

from repro.ckpt import CheckpointStore, RunSupervisor, checkpoint_run

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: c1/c3 cover the dedicated-thread servers; c18 covers the FaaS
#: family, whose per-invocation sandbox churn exercises checkpointing
#: across thread birth/exit boundaries none of the stable-roster cases
#: ever cross.
SMOKE_CASES = ("c1", "c3", "c18")


def _load_golden(case_id):
    with open(os.path.join(GOLDEN_DIR, case_id + ".json")) as handle:
        return json.load(handle)


@pytest.mark.parametrize("case_id", SMOKE_CASES)
def test_checkpoint_restore_roundtrip(tmp_path, case_id):
    golden = _load_golden(case_id)
    store = CheckpointStore(str(tmp_path / case_id))
    outcome = checkpoint_run(case_id, duration_s=golden["duration_s"],
                             seed=golden["seed"], store=store)
    assert outcome["document"]["digest"] == golden["digest"]
    assert outcome["driver"].checkpoints
    assert store.latest(case_id) is not None

    from repro.ckpt import resume_case

    resumed = resume_case(store.latest(case_id))
    # The latest checkpoint's cut is the final barrier; replay still
    # verifies it byte-exactly before finishing the run.
    assert resumed["document"]["digest"] == golden["digest"]
    assert resumed["document"]["events"] == golden["events"]


def test_crash_resume_recovers_golden_digest(tmp_path):
    case_id = SMOKE_CASES[0]
    golden = _load_golden(case_id)
    supervisor = RunSupervisor(CheckpointStore(str(tmp_path / "store")))
    outcome = supervisor.run(case_id, duration_s=golden["duration_s"],
                             seed=golden["seed"], kill_at_us=900_000)
    assert outcome["resumes"] == 1
    assert outcome["document"]["digest"] == golden["digest"]
    assert outcome["document"]["stats"] == golden["stats"]
