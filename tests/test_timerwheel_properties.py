"""Property tests for the hierarchical timer wheel.

The wheel replaced the kernel's single global event heap, so its
contract is checked against the thing it replaced: a sorted-heap model.
For arbitrary interleavings of arm / cancel / pop-up-to-limit the wheel
must fire exactly the timers the heap would fire, in exactly the heap's
``(when, seq)`` order -- never losing a timer, never firing a cancelled
one, never firing early, regardless of which level (due block, the
three far levels, or the overflow heap) an entry cascades through.

The operation stream mirrors how the kernel drives the wheel: pops use
a monotone ``limit`` (the run horizon), a ``None`` pop advances virtual
time to the limit, and no arm ever targets the past (the kernel clamps
``post()`` to ``now``).
"""

import heapq
import itertools

from hypothesis import given, settings, strategies as st

from repro.sim.timerwheel import TimerWheel


class _FakeTimer:
    __slots__ = ("cancelled", "name")

    def __init__(self, name):
        self.cancelled = False
        self.name = name

    def __repr__(self):
        return "T%d%s" % (self.name, "x" if self.cancelled else "")


#: Deltas spanning every wheel level: the due block (< 1024 us), the
#: three far levels (up to ~2^40 us), and the overflow heap beyond.
_DELTAS = st.one_of(
    st.integers(0, 1023),
    st.integers(1024, (1 << 20) - 1),
    st.integers(1 << 20, (1 << 30) - 1),
    st.integers(1 << 30, (1 << 40) + 10_000),
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("arm"), _DELTAS),
        st.tuples(st.just("cancel"), st.integers(0, 10 ** 6)),
        st.tuples(st.just("pop"), st.integers(0, 1 << 22)),
    ),
    max_size=120,
)


def _model_pop(model, limit):
    """Pop the next live entry from the heap model, or None."""
    while model and model[0][0] <= limit:
        when, seq, timer = heapq.heappop(model)
        if timer.cancelled:
            continue
        return when, timer
    return None


def _drain(wheel, model, limit, now):
    """Pop both sides until empty; assert they agree entry by entry."""
    fired = []
    while True:
        expected = _model_pop(model, limit)
        actual = wheel.pop_next(limit)
        assert actual == expected, (
            "wheel fired %r but the heap model fired %r (limit=%d)"
            % (actual, expected, limit))
        if actual is None:
            return fired, max(now, limit)
        when, timer = actual
        assert not timer.cancelled
        assert when <= limit
        assert when >= now, "fired in the past: %d < now %d" % (when, now)
        now = when
        fired.append(actual)


@settings(max_examples=120, deadline=None)
@given(ops=_OPS)
def test_wheel_matches_heap_model(ops):
    wheel = TimerWheel()
    model = []  # heap of (when, seq, timer)
    armed = []  # every timer ever armed, for the cancel op + final audit
    seq = itertools.count()
    now = 0
    name = itertools.count()

    for op, value in ops:
        if op == "arm":
            timer = _FakeTimer(next(name))
            when = now + value
            heapq.heappush(model, (when, next(seq), timer))
            wheel.insert(when, next(seq), timer)
            armed.append((when, timer))
        elif op == "cancel" and armed:
            armed[value % len(armed)][1].cancelled = True
        elif op == "pop":
            limit = now + value
            fired, now = _drain(wheel, model, limit, now)
            for when, timer in fired:
                timer.cancelled = True  # mark fired; must never re-fire

    # Final drain far beyond every representable entry: nothing live
    # may be lost, and order must still match the model.
    live = [t for _, t in wheel.pending() if not t.cancelled]
    assert len(live) == sum(1 for _, t in armed if not t.cancelled)
    _drain(wheel, model, 1 << 50, now)
    assert not wheel.has_live_timer()
    assert [t for _, t in wheel.pending() if not t.cancelled] == []


@settings(max_examples=60, deadline=None)
@given(deltas=st.lists(_DELTAS, min_size=1, max_size=60),
       limit_step=st.integers(1, 1 << 41))
def test_every_armed_timer_fires_exactly_once_in_order(deltas, limit_step):
    """No cancels: every armed timer fires once, in (when, seq) order."""
    wheel = TimerWheel()
    seq = itertools.count()
    timers = []
    for delta in deltas:
        timer = _FakeTimer(len(timers))
        wheel.insert(delta, next(seq), timer)
        timers.append((delta, timer))

    fired = []
    limit = 0
    step = limit_step
    while wheel.has_live_timer():
        # Geometric horizon: reaches the largest representable delta in
        # ~41 rounds even when the drawn first step is tiny, while small
        # steps still exercise many partial drains at the low end.
        limit += step
        step *= 2
        while True:
            entry = wheel.pop_next(limit)
            if entry is None:
                break
            fired.append(entry)

    assert len(fired) == len(timers), "lost %d timer(s)" % (
        len(timers) - len(fired))
    whens = [when for when, _ in fired]
    assert whens == sorted(whens)
    # Same-when entries fire in arm order (the seq tie-break).
    assert [t.name for _, t in fired] == [
        t.name for _, t in sorted(
            ((when, timer) for when, timer in timers),
            key=lambda pair: (pair[0], pair[1].name))]
