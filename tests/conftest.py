"""Shared test fixtures: the session-scoped case-evaluation cache.

``evaluate_case`` is the suite's dominant cost -- every call replays the
case's kernel three-plus times (To, Ti, one run per solution).  Several
test modules evaluate the *same* (case, seed, duration) triples, so the
cache runs each triple once per session and, when a later module asks
for additional solutions, runs only the missing solution legs against
the already-measured To baseline (exactly what ``evaluate_case`` itself
would have done).
"""

import pytest

from repro.cases import Solution, evaluate_case, get_case, run_case


class EvaluationCache:
    """Memoized ``evaluate_case`` keyed by (case_id, seed, duration_s)."""

    def __init__(self):
        self._store = {}

    def evaluate(self, case_id, solutions=(Solution.PBOX,), seed=1,
                 duration_s=4):
        key = (case_id, seed, duration_s)
        evaluation = self._store.get(key)
        if evaluation is None:
            evaluation = evaluate_case(
                get_case(case_id), solutions=list(solutions),
                seed=seed, duration_s=duration_s)
            self._store[key] = evaluation
            return evaluation
        for solution in solutions:
            if solution not in evaluation.solution_runs:
                evaluation.solution_runs[solution] = run_case(
                    get_case(case_id), solution, seed=seed,
                    baseline_us=evaluation.baseline.victim_mean_us,
                    duration_s=duration_s)
        return evaluation


@pytest.fixture(scope="session")
def evaluation_cache():
    return EvaluationCache()
