"""ShardedPBoxManager: routing, aggregation, and golden equivalence.

The facade must be a drop-in for a plain manager: the whole committed
golden corpus replays bit-identically through it (every registry case,
compared against ``tests/golden/`` -- the corpus itself is *not*
regenerated for the sharded manager, that is the point).  On top of
that, routing and aggregation have direct unit coverage: tenant-named
threads land in tenant shards, psids stay globally ordered, stats sum
across shards, and the shared budget is visible to every shard.
"""

import json
import os

import pytest

from repro.core import (
    IsolationRule,
    PenaltyBudget,
    ShardedPBoxManager,
    StateEvent,
)
from repro.core.shards import DEFAULT_SHARD, tenant_shard
from repro.obs.golden import first_divergence, run_golden_case
from repro.sim import Kernel, Sleep

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _spawn_named(kernel, manager, names):
    """One pBox per thread name; returns name -> pbox."""
    rule = IsolationRule(isolation_level=50)
    made = {}

    def body(name):
        def run():
            made[name] = manager.create(rule)
            yield Sleep(us=10)
        return run

    for name in names:
        kernel.spawn(body(name), name=name)
    kernel.run(until_us=100)
    return made


# -- routing ----------------------------------------------------------------

def test_tenant_shard_key_extraction():
    class _T:
        def __init__(self, name):
            self.name = name

    assert tenant_shard(_T("t3-oltp")) == "t3"
    assert tenant_shard(_T("t12-cv7")) == "t12"
    assert tenant_shard(_T("client")) == DEFAULT_SHARD
    assert tenant_shard(None) == DEFAULT_SHARD


def test_create_routes_by_tenant_and_psids_stay_global():
    kernel = Kernel(cores=2)
    manager = ShardedPBoxManager(kernel)
    made = _spawn_named(kernel, manager,
                        ["t0-oltp", "t1-oltp", "t0-batch", "helper"])
    assert manager.shard_count == 3          # t0, t1, _shared
    # psids are unique and creation-ordered across shards.
    psids = sorted(pbox.psid for pbox in made.values())
    assert psids == [1, 2, 3, 4]
    assert [p.psid for p in manager.pboxes()] == psids
    for name, pbox in made.items():
        assert manager.get(pbox.psid) is pbox


def test_events_stay_shard_local():
    kernel = Kernel(cores=2)
    manager = ShardedPBoxManager(kernel)
    made = _spawn_named(kernel, manager, ["t0-oltp", "t1-oltp"])
    a, b = made["t0-oltp"], made["t1-oltp"]
    manager.activate(a)
    manager.update(a, "lock", StateEvent.PREPARE)
    # Same key name in another tenant: different shard, no crosstalk.
    assert manager.contended("lock", a)
    assert not manager.contended("lock", b)
    assert manager.contended("lock")         # shard-blind fallback
    shard_a = manager._pbox_shard[a.psid]
    shard_b = manager._pbox_shard[b.psid]
    assert "lock" in shard_a.competitor_map
    assert "lock" not in shard_b.competitor_map


def test_release_prunes_routing():
    kernel = Kernel(cores=2)
    manager = ShardedPBoxManager(kernel)
    made = _spawn_named(kernel, manager, ["t0-oltp"])
    pbox = made["t0-oltp"]
    manager.release(pbox)
    assert manager.get(pbox.psid) is None
    assert pbox.psid not in manager._pbox_shard
    manager.release(pbox)                    # idempotent


# -- aggregation ------------------------------------------------------------

def test_stats_sum_across_shards_and_match_plain_shape():
    kernel = Kernel(cores=2)
    manager = ShardedPBoxManager(kernel)
    empty = manager.stats                    # no shard yet: zeroed dict
    assert empty["events"] == 0
    made = _spawn_named(kernel, manager, ["t0-oltp", "t1-oltp"])
    for pbox in made.values():
        manager.activate(pbox)
        manager.update(pbox, "k", StateEvent.HOLD)
        manager.update(pbox, "k", StateEvent.UNHOLD)
        manager.freeze(pbox)
    stats = manager.stats
    assert isinstance(stats, dict)
    assert set(stats) == set(empty)          # no new keys (golden pins)
    assert stats["events"] == 4              # 2 events per shard, summed
    scan = manager.scan_stats
    assert scan["scans"] == 2 and scan["evaluated"] == 2


def test_drains_union_and_scan_covers_all_shards():
    kernel = Kernel(cores=2)
    manager = ShardedPBoxManager(kernel, scan_policy="deferred")
    made = _spawn_named(kernel, manager, ["t0-oltp", "t1-oltp"])
    for pbox in made.values():
        manager.activate(pbox)
        manager.freeze(pbox)
    assert manager.scan() == 2               # both shards' dirty sets
    assert manager.scan() == 0               # drained everywhere
    for pbox in made.values():
        manager.update(pbox, "k", StateEvent.HOLD)
    psids = {p.psid for p in made.values()}
    assert manager.drain_dirty() == psids    # union over shards
    assert manager.drain_active() == psids
    assert manager.drain_active() == set()


def test_shared_budget_reaches_every_shard():
    kernel = Kernel(cores=2)
    budget = PenaltyBudget(cap_us=100)
    manager = ShardedPBoxManager(kernel, penalty_budget=budget)
    made = _spawn_named(kernel, manager, ["t0-oltp", "t1-oltp"])
    for pbox in made.values():
        shard = manager._pbox_shard[pbox.psid]
        assert shard.penalty_budget is budget


def test_shard_patch_applies_to_existing_and_future_shards():
    kernel = Kernel(cores=2)
    manager = ShardedPBoxManager(kernel)
    _spawn_named(kernel, manager, ["t0-oltp"])
    patched = []
    manager.add_shard_patch(lambda shard: patched.append(shard))
    assert len(patched) == 1                 # existing shard
    _spawn_named(kernel, manager, ["t1-oltp"])
    assert len(patched) == 2                 # lazily created one too


# -- golden equivalence -----------------------------------------------------

def _corpus_case_ids():
    return sorted(
        (name[:-5] for name in os.listdir(GOLDEN_DIR)
         if name.endswith(".json")),
        key=lambda cid: int(cid[1:]),
    )


def _sharded_factory(kernel, enabled, penalty_engine):
    # cap_us=None: the budget is a pure accounting shim, proving the
    # reserve/release plumbing itself never perturbs behavior.
    return ShardedPBoxManager(kernel, enabled=enabled,
                              penalty_engine=penalty_engine,
                              penalty_budget=PenaltyBudget())


@pytest.mark.parametrize("case_id", _corpus_case_ids())
def test_corpus_replays_bit_identical_through_facade(case_id):
    """Every committed golden document survives the sharded manager.

    Case threads carry no tenant prefix, so the whole case lands in the
    ``_shared`` shard -- the facade must then be byte-for-byte the plain
    manager: same tracepoint stream, same checkpoint chain, same pinned
    stats, against the corpus committed *before* sharding existed.
    """
    with open(os.path.join(GOLDEN_DIR, "%s.json" % case_id)) as handle:
        golden = json.load(handle)
    actual = run_golden_case(case_id, golden["duration_s"], golden["seed"],
                             manager_factory=_sharded_factory)
    assert first_divergence(golden, actual) is None, (
        "sharded manager diverged from the committed golden for %s"
        % case_id)
