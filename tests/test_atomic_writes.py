"""Atomic result writes: no stale ``.tmp`` debris, ever.

``SWEEP.json`` / ``CHAOS.json`` and checkpoint artifacts are written
via temp + ``os.replace``.  The failure half of that contract: when
serialization (or the write itself) blows up, the temp file must be
unlinked -- a crashed sweep must not leave ``CHAOS.json.tmp`` sitting
next to a previous good ``CHAOS.json``.
"""

import os
import zlib

import pytest

from repro.ckpt import CheckpointStore
from repro.faults.chaos import ChaosResult
from repro.runner.sweep import SweepResult


def _exploding_payload(self):
    # json.dump serializes incrementally, so the TypeError fires after
    # bytes have already landed in the temp file.
    return {"prefix": list(range(64)), "bad": object()}


class _ExplodingChaosResult(ChaosResult):
    to_json_dict = _exploding_payload


class _ExplodingSweepResult(SweepResult):
    to_json_dict = _exploding_payload


def _listdir(path):
    return sorted(os.listdir(path))


def test_chaos_write_failure_leaves_no_tmp(tmp_path):
    result = _ExplodingChaosResult({}, [], [], 1.5, "fp", {})
    target = tmp_path / "CHAOS.json"
    with pytest.raises(TypeError):
        result.write_json(str(target))
    assert _listdir(tmp_path) == []


def test_chaos_write_failure_keeps_previous_good_file(tmp_path):
    target = tmp_path / "CHAOS.json"
    good = ChaosResult({}, [], [], 1.5, "fp", {})
    good.write_json(str(target))
    previous = target.read_bytes()
    with pytest.raises(TypeError):
        _ExplodingChaosResult({}, [], [], 1.5, "fp", {}).write_json(
            str(target))
    assert _listdir(tmp_path) == ["CHAOS.json"]
    assert target.read_bytes() == previous


def test_sweep_write_failure_leaves_no_tmp(tmp_path):
    result = _ExplodingSweepResult({}, [], [1], 1.5, "fp", {})
    target = tmp_path / "results" / "SWEEP.json"
    with pytest.raises(TypeError):
        result.write_json(str(target))
    # The directory was created, but holds no debris.
    assert _listdir(tmp_path / "results") == []


def test_sweep_write_success_replaces_atomically(tmp_path):
    result = SweepResult({}, [], [1], 1.5, "fp", {"jobs": 0})
    target = tmp_path / "SWEEP.json"
    result.write_json(str(target))
    assert _listdir(tmp_path) == ["SWEEP.json"]


def test_checkpoint_store_atomic_write_failure_leaves_no_tmp(tmp_path):
    # A str payload against the binary handle raises after the temp
    # file was created; the cleanup must unlink it.
    with pytest.raises(TypeError):
        CheckpointStore._atomic_write(str(tmp_path / "x.ckpt.z"),
                                      "not-bytes")
    assert _listdir(tmp_path) == []


def test_checkpoint_store_atomic_write_success(tmp_path):
    path = str(tmp_path / "x.ckpt.z")
    CheckpointStore._atomic_write(path, zlib.compress(b"payload"))
    assert _listdir(tmp_path) == ["x.ckpt.z"]
    with open(path, "rb") as handle:
        assert zlib.decompress(handle.read()) == b"payload"
