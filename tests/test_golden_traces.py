"""Golden-trace replay: every registry case must be bit-identical.

Each committed document under ``tests/golden/`` pins the SHA-256 of a
case's canonical tracepoint stream plus its final kernel/manager stats
at the corpus parameters (solution=pbox, seed, duration).  A kernel or
app-model change that moves *any* scheduling decision flips a digest
and fails here; the failure message includes a unified diff of the
golden documents and -- via the checkpoint chain -- the actual event
lines of the first divergent window, so the divergence is debuggable
without bisecting millions of events.

Intentional behavior changes are blessed with ``make regen-golden``
(review the corpus diff before committing it).
"""

import difflib
import json
import os

import pytest

from repro.cases import ALL_CASES
from repro.obs.golden import (
    CHECKPOINT_EVERY,
    WindowRecorder,
    first_divergence,
    run_golden_case,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _corpus_case_ids():
    return sorted(
        (name[:-5] for name in os.listdir(GOLDEN_DIR)
         if name.endswith(".json")),
        key=lambda cid: int(cid[1:]),
    )


def _load_golden(case_id):
    with open(os.path.join(GOLDEN_DIR, "%s.json" % case_id)) as handle:
        return json.load(handle)


def _document_diff(expected, actual):
    """Unified diff of the two golden documents (JSON, sorted keys)."""
    want = json.dumps(expected, indent=1, sort_keys=True).splitlines()
    have = json.dumps(actual, indent=1, sort_keys=True).splitlines()
    return "\n".join(difflib.unified_diff(
        want, have, fromfile="tests/golden/%s.json" % expected["case_id"],
        tofile="replay", lineterm=""))


def _divergent_window_lines(case_id, golden, window_index):
    """Re-run the case recording the first divergent event window."""
    recorder = WindowRecorder(window_index * CHECKPOINT_EVERY,
                              count=CHECKPOINT_EVERY)
    run_golden_case(
        case_id, golden["duration_s"], golden["seed"],
        observer=lambda env: recorder.attach(env.kernel.trace))
    return recorder.lines


def test_corpus_covers_registry():
    """Every registry case has a committed golden, and nothing extra."""
    assert _corpus_case_ids() == sorted(
        ALL_CASES, key=lambda cid: int(cid[1:]))


@pytest.mark.parametrize("case_id", _corpus_case_ids())
def test_case_replays_bit_identical(case_id):
    golden = _load_golden(case_id)
    actual = run_golden_case(case_id, golden["duration_s"], golden["seed"])
    actual["case_id"] = case_id
    actual["seed"] = golden["seed"]
    actual["duration_s"] = golden["duration_s"]

    window = first_divergence(golden, actual)
    if window is None:
        return

    # Divergence: build the debuggable failure message.  The event
    # lines are from the *replay* (the committed corpus only stores
    # digests); the checkpoint chain localizes the first divergent
    # window, so these are the events to compare against the blessed
    # behavior when deciding whether to `make regen-golden`.
    start = window * CHECKPOINT_EVERY
    lines = _divergent_window_lines(case_id, golden, window)
    preview = "\n".join(lines[:60])
    pytest.fail(
        "golden trace diverged for %s (seed=%s, duration=%ss)\n\n"
        "document diff:\n%s\n\n"
        "first divergent window: events %d..%d (replay's events shown; "
        "%d recorded)\n%s\n\n"
        "If this change is intentional, regenerate with "
        "`make regen-golden` and review the corpus diff."
        % (case_id, golden["seed"], golden["duration_s"],
           _document_diff(golden, actual),
           start, start + CHECKPOINT_EVERY - 1, len(lines), preview),
        pytrace=False)
