"""Golden-trace replay: every registry case must be bit-identical.

Each committed document under ``tests/golden/`` pins the SHA-256 of a
case's canonical tracepoint stream plus its final kernel/manager stats
at the corpus parameters (solution=pbox, seed, duration).  A kernel or
app-model change that moves *any* scheduling decision flips a digest
and fails here; the failure message includes a unified diff of the
golden documents and -- via the checkpoint chain -- the actual event
lines of the first divergent window, so the divergence is debuggable
without bisecting millions of events.

Intentional behavior changes are blessed with ``make regen-golden``
(review the corpus diff before committing it).
"""

import difflib
import json
import os

import pytest

from repro.cases import ALL_CASES
from repro.obs.golden import (
    CHECKPOINT_EVERY,
    WindowRecorder,
    first_divergence,
    run_golden_case,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: The 17 digests of the corpus as committed *before* the scheduler
#: seam (pluggable run-queue policies) and the FaaS/scale extensions
#: landed.  They are frozen here, independent of the files on disk, to
#: prove the default (cfs) path stayed byte-identical without anyone
#: regenerating the corpus: if a seam change flips one of these, both
#: the replay test and this table fail, and a sneaky `make
#: regen-golden` that rewrites the files still trips this table.
PRE_SEAM_DIGESTS = {
    "c1": "2f2739f8122db8edbb84754732bedac7c2e590d5bba5b386d62eaceadc4134f1",
    "c2": "fb94e952da95c4e0cf2ec634d817e8b0c18d94000dcde00ebce8bceef711d6ea",
    "c3": "e923658f2073e304f2a921b3531674fe80a954e57b02f0dfd294c9879d2f5354",
    "c4": "c655c14d9226a08c1d91bf69d61e0c264b705e8ea7ac63fa412b3c30d0be0d75",
    "c5": "6d26321ebbd799c5c22ed4b18b1699c4a6b19c15ad3725bf94de8a3dafc1aece",
    "c6": "afa36b4c5e4c59522757290ebc5e5ad6652cd6674a86adb06cd8518f78638c08",
    "c7": "838a93f51bc97aec0b640f5dff18eecebc9672750f778b259599e6f1fa9cf791",
    "c8": "d1798f7a5f15851a018e47d408aa7d135f009fefe26e83f5ac6d77852bed27d2",
    "c9": "89eb12fa8addb823a94034a668eed200ea9cc5fd26910b99847c4fc98dda807b",
    "c10": "0560f87555803d73977221469e07c8f06a5d3b674a095d856f82a00bda0918c0",
    "c11": "ee07ca24e40b0739c72cdb702856646119095be06e31769c4371582771ef8e3f",
    "c12": "ac07bb461b4878e1dd8858aa185720d57928afc7b56ba8ee1f6d4710b7794256",
    "c13": "e106b50f031ab748fd3643ce6d48585a38aa4c94b001011c83ad5c89fb79fa2a",
    "c14": "31eb3736e2794b0295d7cf3a14df79053b38304139a4c02478d1dd0dc809d926",
    "c15": "9571dbc0a48537a388f3a78216fad585f727568d6483e72e1252d3254e735a23",
    "c16": "967cf6aed36e4fab0cf48ffb3d836ee76ef319188a3f0b8f5b09cf38d7b112ca",
    "c17": "8e712959a4585e5752d125ec143957b989e52ac8d8d7f902205db52a3cfd2d20",
}


def _corpus_case_ids():
    return sorted(
        (name[:-5] for name in os.listdir(GOLDEN_DIR)
         if name.endswith(".json")),
        key=lambda cid: int(cid[1:]),
    )


def _load_golden(case_id):
    with open(os.path.join(GOLDEN_DIR, "%s.json" % case_id)) as handle:
        return json.load(handle)


def _document_diff(expected, actual):
    """Unified diff of the two golden documents (JSON, sorted keys)."""
    want = json.dumps(expected, indent=1, sort_keys=True).splitlines()
    have = json.dumps(actual, indent=1, sort_keys=True).splitlines()
    return "\n".join(difflib.unified_diff(
        want, have, fromfile="tests/golden/%s.json" % expected["case_id"],
        tofile="replay", lineterm=""))


def _divergent_window_lines(case_id, golden, window_index):
    """Re-run the case recording the first divergent event window."""
    recorder = WindowRecorder(window_index * CHECKPOINT_EVERY,
                              count=CHECKPOINT_EVERY)
    run_golden_case(
        case_id, golden["duration_s"], golden["seed"],
        observer=lambda env: recorder.attach(env.kernel.trace))
    return recorder.lines


def test_corpus_covers_registry():
    """Every registry case has a committed golden, and nothing extra."""
    assert _corpus_case_ids() == sorted(
        ALL_CASES, key=lambda cid: int(cid[1:]))


def test_pre_seam_corpus_unchanged():
    """The 17 pre-seam golden files still carry their frozen digests.

    The scheduler seam landed with the claim that the default cfs path
    is byte-identical to the pre-seam kernel.  The replay test proves
    the *code* reproduces the *files*; this table proves the files
    themselves were never regenerated, so the two together pin the
    claim with no trust in the working tree's history.
    """
    for case_id, digest in PRE_SEAM_DIGESTS.items():
        assert _load_golden(case_id)["digest"] == digest, (
            "committed golden for %s no longer matches the pre-seam "
            "corpus; the 17 original cases must not be regenerated"
            % case_id)


@pytest.mark.parametrize("case_id", _corpus_case_ids())
def test_case_replays_bit_identical(case_id):
    golden = _load_golden(case_id)
    actual = run_golden_case(case_id, golden["duration_s"], golden["seed"])
    actual["case_id"] = case_id
    actual["seed"] = golden["seed"]
    actual["duration_s"] = golden["duration_s"]

    window = first_divergence(golden, actual)
    if window is None:
        return

    # Divergence: build the debuggable failure message.  The event
    # lines are from the *replay* (the committed corpus only stores
    # digests); the checkpoint chain localizes the first divergent
    # window, so these are the events to compare against the blessed
    # behavior when deciding whether to `make regen-golden`.
    start = window * CHECKPOINT_EVERY
    lines = _divergent_window_lines(case_id, golden, window)
    preview = "\n".join(lines[:60])
    pytest.fail(
        "golden trace diverged for %s (seed=%s, duration=%ss)\n\n"
        "document diff:\n%s\n\n"
        "first divergent window: events %d..%d (replay's events shown; "
        "%d recorded)\n%s\n\n"
        "If this change is intentional, regenerate with "
        "`make regen-golden` and review the corpus diff."
        % (case_id, golden["seed"], golden["duration_s"],
           _document_diff(golden, actual),
           start, start + CHECKPOINT_EVERY - 1, len(lines), preview),
        pytrace=False)
