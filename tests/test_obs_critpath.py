"""Per-request causal tracing: sum identity, blame, purity, CLI.

The load-bearing claim is structural: the tracer shifts a per-thread
state at every bus event and charges ``now - state_since`` to the
outgoing state's bucket, so the segment buckets telescope to exactly
``end - begin`` -- bit-exact against the latency the recorder sampled,
for *any* event interleaving.  The hypothesis test drives the replay
machine with arbitrary synthetic streams; the e2e tests check the same
identity on real kernel runs; the purity tests pin that attaching the
tracer (and the ``why.explain`` emitter) never moves a canonical event.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cases import Solution, get_case, run_case
from repro.obs import BreachExplainer, CritPathTracer, TelemetryPipeline
from repro.obs.critpath import SEGMENTS, UNKNOWN
from repro.obs.golden import canonical_names, first_divergence, run_golden_case
from repro.obs.tracepoints import DERIVED_PREFIXES, TracepointBus, is_derived

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

TID = 7
RID = 1


def _load_golden(case_id):
    with open(os.path.join(GOLDEN_DIR, "%s.json" % case_id)) as handle:
        return json.load(handle)


def _drive(steps, tail_gap=0):
    """Feed one synthetic request through an attached tracer.

    ``steps`` is ``[(gap_us, op), ...]`` where ``op`` is an
    ``(event, *payload)`` tuple; the request begins at t=0 and ends
    ``tail_gap`` after the last step.  Returns the finalized trace.
    """
    bus = TracepointBus()
    tracer = CritPathTracer()
    tracer.attach(bus)
    bus.point("req.begin").fire(0, rid=RID, tid=TID, tenant="t0")
    now = 0
    for gap, op in steps:
        now += gap
        kind = op[0]
        if kind == "enqueue":
            bus.point("sched.enqueue").fire(now, tid=TID, name="c")
        elif kind == "switch":
            bus.point("sched.switch").fire(now, tid=TID, name="c", core=0,
                                           slice_us=100)
        elif kind == "switchout":
            bus.point("sched.switchout").fire(now, tid=TID, core=0,
                                              ran_us=gap, done=op[1])
        elif kind == "sleep":
            bus.point("sched.sleep").fire(now, tid=TID, us=100)
        elif kind == "futex":
            bus.point("futex.wait").fire(now, tid=TID, key="mutex",
                                         waiters=1, holders=len(op[1]),
                                         holder_psids=list(op[1]))
        elif kind == "throttle":
            bus.point("cgroup.throttle").fire(now, group="g", tid=TID)
        elif kind == "unthrottle":
            bus.point("cgroup.unthrottle").fire(now, group="g", tids=[TID])
        elif kind == "penalty":
            bus.point("penalty.inject").fire(now, tid=TID, psid=op[1],
                                             delay_us=gap)
        elif kind == "serve":
            bus.point("req.serve").fire(now, rid=RID, tid=99, pool="p",
                                        queued_us=op[1])
    now += tail_gap
    bus.point("req.end").fire(now, rid=RID, tid=TID, latency_us=now)
    traces = tracer.slowest("t0")
    assert len(traces) == 1
    return traces[0]


# -- the exact-sum identity (property) --------------------------------------

_OPS = st.one_of(
    st.just(("enqueue",)),
    st.just(("switch",)),
    st.tuples(st.just("switchout"), st.booleans()),
    st.just(("sleep",)),
    st.tuples(st.just("futex"),
              st.lists(st.integers(1, 3), max_size=2).map(tuple)),
    st.just(("throttle",)),
    st.just(("unthrottle",)),
    st.tuples(st.just("penalty"), st.integers(1, 4)),
    st.tuples(st.just("serve"), st.integers(0, 400)),
)


@settings(max_examples=200, deadline=None)
@given(steps=st.lists(st.tuples(st.integers(0, 500), _OPS), max_size=30),
       tail_gap=st.integers(0, 500))
def test_segments_sum_exactly_for_any_interleaving(steps, tail_gap):
    """sum(buckets) == end - begin, bit-exact, for arbitrary streams."""
    trace = _drive(steps, tail_gap)
    assert sum(trace.buckets.values()) == trace.latency_us
    assert all(us >= 0 for us in trace.buckets.values())
    # Lock blame is conserved: it covers the lock bucket, plus at most
    # the pool carve-out (which deducts unknown-holder blame only).
    blamed = sum(trace.lock_blame.values())
    assert trace.buckets["lock"] <= blamed
    assert blamed <= trace.buckets["lock"] + trace.buckets["pool_queue"]
    # Penalty blame re-walks retained segments; no stream here is long
    # enough to drop any, so the per-psid split is exact too.
    assert sum(trace.penalty_psids.values()) == trace.buckets["penalty"]


# -- targeted replay semantics ----------------------------------------------

def test_lock_wait_blamed_on_holders_with_integer_split():
    trace = _drive([(10, ("futex", (4, 5))), (101, ("enqueue",)),
                    (20, ("switch",))])
    assert trace.buckets["lock"] == 101
    assert trace.buckets["runnable"] == 20
    # 101 // 2 = 50 each, remainder to the first holder.
    assert trace.lock_blame[(4, "mutex")] == 51
    assert trace.lock_blame[(5, "mutex")] == 50


def test_holderless_wait_blames_unknown():
    trace = _drive([(0, ("futex", ())), (80, ("enqueue",))])
    assert trace.lock_blame == {(UNKNOWN, "mutex"): 80}


def test_pool_queue_carved_out_of_lock_sum_preserving():
    """The worker's queued_us report subdivides the client's task wait."""
    trace = _drive([(0, ("futex", ())), (50, ("serve", 300)),
                    (250, ("enqueue",)), (10, ("switch",))])
    # 300 us lock wait total, 300 queued reported -> all of it is queue.
    assert trace.buckets["pool_queue"] == 300
    assert trace.buckets["lock"] == 0
    # The matching unknown-holder blame was consumed by the carve-out.
    assert trace.lock_blame == {}
    assert sum(trace.buckets.values()) == trace.latency_us


def test_pool_queue_carveout_is_capped_by_lock_time():
    trace = _drive([(0, ("futex", ())), (40, ("serve", 10_000)),
                    (60, ("enqueue",))])
    assert trace.buckets["pool_queue"] == 100
    assert trace.buckets["lock"] == 0
    assert sum(trace.buckets.values()) == trace.latency_us


def test_penalty_segments_split_per_psid():
    trace = _drive([(5, ("penalty", 2)), (300, ("enqueue",)),
                    (10, ("switch",)), (0, ("penalty", 3)),
                    (200, ("enqueue",))])
    assert trace.buckets["penalty"] == 500
    assert trace.penalty_psids == {2: 300, 3: 200}


def test_requeue_without_enqueue_counts_as_runnable():
    """switchout(done=False) re-queues with no sched.enqueue event."""
    trace = _drive([(50, ("switchout", False)), (70, ("switch",)),
                    (30, ("switchout", True))])
    assert trace.buckets["oncpu"] == 80
    assert trace.buckets["runnable"] == 70


# -- e2e on real runs -------------------------------------------------------

def _traced_run(case_id, duration_s=1.5, seed=1):
    tracer = CritPathTracer()
    run_case(get_case(case_id), Solution.PBOX, duration_s=duration_s,
             seed=seed, observer=lambda env: tracer.attach(env.kernel.trace))
    return tracer


def test_e2e_identity_on_real_run():
    tracer = _traced_run("c5")
    assert tracer.completed_count() > 0
    for tenant in tracer.tenants():
        for trace in tracer.slowest(tenant):
            assert sum(trace.buckets.values()) == trace.latency_us, trace
    table = tracer.format_table(slowest=5)
    assert "[sum ok]" in table
    assert "MISMATCH" not in table
    # c5's noisy tenant is the backup: one dump request longer than the
    # whole run, so only the victim ever *completes* requests here.
    totals = tracer.tenant_totals()
    assert set(totals) == {"victim"}
    for row in totals.values():
        assert row["requests"] > 0


def test_e2e_groups_by_tenant():
    """c1 completes requests on both sides of the interference pair."""
    tracer = _traced_run("c1")
    totals = tracer.tenant_totals()
    assert set(totals) == {"victim", "noisy"}
    for row in totals.values():
        assert row["requests"] > 0


def test_e2e_pool_requests_join_worker_side():
    """c16 (event-driven pools): rid flows client -> pool worker."""
    tracer = _traced_run("c16")
    assert tracer.completed_count() > 0
    # Lock-heavy case: the slowest victims show blamed lock time.
    slow = tracer.slowest("victim", k=5)
    assert any(t.lock_blame for t in slow)


def test_explain_reports_dominant_segments():
    tracer = _traced_run("c5")
    tenant = tracer.tenants()[0]
    top = tracer.explain(tenant, top=3)
    assert 0 < len(top) <= 3
    for rid, latency_us, kind, us in top:
        assert kind in SEGMENTS
        assert 0 <= us <= latency_us


def test_to_json_dict_squeezes_deterministically():
    tracer = _traced_run("c5")
    doc = tracer.to_json_dict(budget_bytes=4_096)
    payload = json.dumps(doc, sort_keys=True)
    assert doc["squeezed_to"] >= 3
    # Floor reached or under budget; either way the doc stays small
    # enough for the results/ byte ceiling with room to spare.
    if doc["squeezed_to"] > 3:
        assert len(payload) <= 4_096 + 64   # + the squeezed_to key
    for entry in doc["tenants"].values():
        assert len(entry["slowest"]) <= doc["squeezed_to"]


# -- breach explainer -------------------------------------------------------

def test_breach_explainer_fires_derived_why_point():
    bus = TracepointBus()
    tracer = CritPathTracer()
    tracer.attach(bus)
    bus.point("req.begin").fire(0, rid=1, tid=TID, tenant="t0")
    bus.point("req.end").fire(9_000, rid=1, tid=TID, latency_us=9_000)
    explainer = BreachExplainer(tracer, window_us=50_000).attach(bus)
    fired = []
    bus.subscribe("why.explain",
                  lambda name, t, fields: fired.append((name, t, fields)))
    bus.point("slo.breach").fire(10_000, tenant="t0", burn_short=3.0,
                                 burn_long=2.5)
    assert len(explainer.explanations) == 1
    record = explainer.explanations[0]
    assert record["tenant"] == "t0"
    assert record["top"][0][:2] == [1, 9_000]
    assert fired and fired[0][2]["tenant"] == "t0"
    explainer.detach()
    bus.point("slo.breach").fire(20_000, tenant="t0", burn_short=3.0,
                                 burn_long=2.5)
    assert len(explainer.explanations) == 1


def test_breach_explainer_handles_empty_window():
    bus = TracepointBus()
    explainer = BreachExplainer(CritPathTracer()).attach(bus)
    bus.point("slo.breach").fire(10_000, tenant="t9", burn_short=3.0,
                                 burn_long=2.5)
    assert explainer.explanations == [
        {"tenant": "t9", "at_us": 10_000, "top": []}]


# -- derived namespaces stay out of the canonical stream --------------------

def test_derived_prefixes_cover_slo_and_why():
    assert set(DERIVED_PREFIXES) == {"slo.", "why."}
    assert is_derived("slo.breach")
    assert is_derived("why.explain")
    assert not is_derived("req.begin")


def test_derived_points_never_enter_canonical_names():
    """No derived point -- registered or lazily created -- is canonical."""
    bus = TracepointBus()
    # Lazily-created derived points must stay excluded too.
    bus.point("why.custom")
    bus.point("slo.custom")
    names = canonical_names(bus)
    assert not any(is_derived(name) for name in names)
    for required in ("req.begin", "req.end", "req.serve", "req.done"):
        assert required in names
    for derived in ("slo.breach", "slo.recover", "why.explain",
                    "why.custom", "slo.custom"):
        assert derived in bus.names()
        assert derived not in names


# -- golden purity: tracing is a pure observer ------------------------------

def _assert_golden_unchanged_with_tracing(case_id):
    from repro.obs.slo import BurnRatePolicy, SLObjective, SLOEvaluator

    golden = _load_golden(case_id)
    evaluator = SLOEvaluator(
        {"victim": SLObjective(latency_us=100, target=0.9)},
        policy=BurnRatePolicy(short_windows=1, long_windows=2,
                              threshold=0.5, clear_below=0.1))
    pipeline = TelemetryPipeline(evaluator=evaluator)
    tracer = CritPathTracer()
    explainer = BreachExplainer(tracer)

    def observer(env):
        env.telemetry = pipeline
        pipeline.attach(env.kernel.trace, manager=env.runtime.manager)
        tracer.attach(env.kernel.trace)
        explainer.attach(env.kernel.trace)

    actual = run_golden_case(case_id, golden["duration_s"],
                             golden["seed"], observer=observer)
    assert first_divergence(golden, actual) is None, (
        "request tracing changed the canonical stream of %s" % case_id)
    # The harsh objective guarantees slo.* and why.* actually fired, so
    # the purity claim covers the emitting paths, not just attachment.
    assert tracer.completed_count() > 0, case_id
    assert explainer.explanations, case_id


def test_tracer_is_pure_subscriber_on_golden_case():
    """Attached tracer + explainer (why.* firing) moves no event."""
    _assert_golden_unchanged_with_tracing("c1")


@pytest.mark.slow
@pytest.mark.parametrize("case_id", ["c%d" % n for n in range(1, 18)])
def test_tracer_is_pure_subscriber_everywhere(case_id):
    _assert_golden_unchanged_with_tracing(case_id)


# -- CLI ---------------------------------------------------------------------

def test_cli_why_prints_table_and_writes_json(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "WHY.json"
    html = tmp_path / "why.html"
    assert main(["why", "c5", "--slowest", "3", "--duration", "1.5",
                 "--json", str(out), "--html", str(html)]) == 0
    printed = capsys.readouterr().out
    assert "per-request critical paths" in printed
    assert "[sum ok]" in printed
    assert "MISMATCH" not in printed
    doc = json.loads(out.read_text())
    assert doc["schema"] == 1
    assert doc["target"] == "c5"
    assert doc["completed"] > 0
    assert html.read_text().startswith("<!DOCTYPE html>")


def test_cli_why_scale_smoke(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "WHY.json"
    assert main(["why", "scale", "--threads", "100", "--slowest", "2",
                 "--json", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "per-request critical paths" in printed
    doc = json.loads(out.read_text())
    assert any(t.startswith("t") for t in doc["tenants"])
