"""Unit tests for the pBox manager (Algorithm 1 and actions)."""

import pytest

from repro.core import IsolationRule, PBoxManager, PBoxStatus, StateEvent
from repro.core.manager import PBOX_LEVEL_KEY
from repro.sim import Compute, Kernel, Now, Sleep


def make_manager(**kwargs):
    kernel = Kernel(cores=4)
    manager = PBoxManager(kernel, **kwargs)
    return kernel, manager


def drive(kernel, body, name=None):
    return kernel.spawn(body, name=name)


def test_create_and_release_lifecycle():
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)

    def body():
        pbox = manager.create(rule)
        assert pbox.status is PBoxStatus.START
        manager.activate(pbox)
        assert pbox.status is PBoxStatus.ACTIVE
        yield Compute(us=1_000)
        manager.freeze(pbox)
        assert pbox.status is PBoxStatus.FROZEN
        assert pbox.activities_completed == 1
        assert pbox.history[-1].exec_us == 1_000
        manager.release(pbox)
        assert pbox.status is PBoxStatus.DESTROYED
        assert manager.get(pbox.psid) is None

    drive(kernel, body)
    kernel.run()


def test_prepare_enter_accumulates_defer_time():
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)
    result = {}

    def body():
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.PREPARE)
        yield Sleep(us=3_000)
        manager.update(pbox, "res", StateEvent.ENTER)
        result["defer"] = pbox.defer_time_us
        manager.freeze(pbox)

    drive(kernel, body)
    kernel.run()
    assert result["defer"] == 3_000


def test_enter_without_prepare_is_ignored():
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)

    def body():
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.ENTER)
        assert pbox.defer_time_us == 0
        yield Compute(us=10)

    drive(kernel, body)
    kernel.run()


def test_unhold_without_hold_is_ignored():
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)

    def body():
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.UNHOLD)
        yield Compute(us=10)

    drive(kernel, body)
    kernel.run()
    assert manager.stats["detections"] == 0


def test_detection_fires_on_unhold_with_deferred_waiter():
    """A long-held resource with a waiting pBox triggers Algorithm 1."""
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)
    boxes = {}

    def noisy():
        pbox = manager.create(rule)
        boxes["noisy"] = pbox
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.HOLD)
        yield Sleep(us=50_000)   # hold for 50 ms
        manager.update(pbox, "res", StateEvent.UNHOLD)
        manager.freeze(pbox)
        yield Compute(us=0)

    def victim():
        yield Sleep(us=1_000)
        pbox = manager.create(rule)
        boxes["victim"] = pbox
        manager.activate(pbox)
        yield Compute(us=100)
        manager.update(pbox, "res", StateEvent.PREPARE)
        # Wait far longer than the goal allows.
        yield Sleep(us=60_000)
        manager.update(pbox, "res", StateEvent.ENTER)
        manager.freeze(pbox)

    drive(kernel, noisy, "noisy")
    drive(kernel, victim, "victim")
    kernel.run(until_us=200_000)
    assert manager.stats["detections"] >= 1
    assert boxes["noisy"].penalties_received >= 1


def test_no_detection_when_holder_started_after_waiter():
    """Algorithm 1 requires the holder to pre-date the waiter (p.time < c.time)."""
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)

    def waiter():
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.PREPARE)
        yield Sleep(us=80_000)
        manager.update(pbox, "res", StateEvent.ENTER)
        manager.freeze(pbox)

    def late_holder():
        yield Sleep(us=10_000)  # HOLD happens after the PREPARE above
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.HOLD)
        yield Sleep(us=5_000)
        manager.update(pbox, "res", StateEvent.UNHOLD)
        manager.freeze(pbox)

    drive(kernel, waiter)
    drive(kernel, late_holder)
    kernel.run(until_us=200_000)
    assert manager.stats["detections"] == 0


def test_no_detection_below_goal():
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=200)  # very tolerant: 200%

    def noisy():
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.HOLD)
        yield Sleep(us=1_000)
        manager.update(pbox, "res", StateEvent.UNHOLD)
        manager.freeze(pbox)

    def victim():
        pbox = manager.create(rule)
        manager.activate(pbox)
        yield Compute(us=10_000)  # plenty of useful execution time
        manager.update(pbox, "res", StateEvent.PREPARE)
        yield Sleep(us=1_000)
        manager.update(pbox, "res", StateEvent.ENTER)
        manager.freeze(pbox)

    drive(kernel, noisy)
    drive(kernel, victim)
    kernel.run(until_us=100_000)
    assert manager.stats["actions"] == 0


def test_penalty_deferred_while_holding_resources():
    """The resume hook must not fire while the noisy pBox holds a key."""
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)
    times = {}

    def noisy():
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.HOLD)
        # Penalty arrives while we still hold "res".
        pbox.pending_penalty_us = 10_000
        yield Compute(us=1_000)
        times["mid"] = yield Now()
        manager.update(pbox, "res", StateEvent.UNHOLD)
        yield Compute(us=1_000)
        times["end"] = yield Now()
        manager.freeze(pbox)

    drive(kernel, noisy)
    kernel.run(until_us=100_000)
    # No penalty before UNHOLD: 'mid' is at 1 ms exactly.
    assert times["mid"] == 1_000
    # Penalty (10 ms) lands between UNHOLD and the next compute.
    assert times["end"] == 12_000
    assert manager.stats["penalties_applied"] == 1


def test_pbox_level_detection_acts_on_most_blamed():
    """Freeze-time detection penalizes the pBox that deferred us most."""
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)
    boxes = {}

    def noisy():
        pbox = manager.create(rule)
        boxes["noisy"] = pbox
        manager.activate(pbox)
        for _ in range(5):
            manager.update(pbox, "res", StateEvent.HOLD)
            yield Sleep(us=9_000)
            manager.update(pbox, "res", StateEvent.UNHOLD)
            yield Sleep(us=1_000)
        manager.freeze(pbox)

    def victim():
        pbox = manager.create(rule)
        boxes["victim"] = pbox
        # Repeated short activities, each mostly deferred: per-activity
        # interference is high and builds blame + history.
        for _ in range(5):
            manager.activate(pbox)
            yield Compute(us=200)
            manager.update(pbox, "res", StateEvent.PREPARE)
            yield Sleep(us=8_000)
            manager.update(pbox, "res", StateEvent.ENTER)
            manager.freeze(pbox)

    drive(kernel, noisy, "noisy")
    drive(kernel, victim, "victim")
    kernel.run(until_us=300_000)
    assert boxes["noisy"].penalties_received >= 1


def test_shared_thread_penalty_sets_deferral_window():
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)
    boxes = {}

    def body():
        noisy = manager.create(rule)
        noisy.shared_thread = True
        victim = manager.create(rule)
        manager.activate(noisy)
        manager.activate(victim)
        boxes["noisy"], boxes["victim"] = noisy, victim
        yield Sleep(us=1_000)
        manager.take_action(noisy, victim, "res")
        assert noisy.penalty_until_us > kernel.now_us
        assert manager.is_task_deferred(noisy)
        assert noisy.pending_penalty_us == 0  # no delay-style penalty

    drive(kernel, body)
    kernel.run(until_us=10_000_000)
    assert boxes["noisy"].penalties_received == 1


def test_queue_admission_blocks_penalized_tasks():
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)

    def body():
        noisy = manager.create(rule)
        noisy.shared_thread = True
        noisy.penalty_until_us = kernel.now_us + 5_000
        admission = manager.make_queue_admission(lambda item: item)
        assert admission(noisy) is False
        assert admission(None) is True
        yield Sleep(us=6_000)
        assert admission(noisy) is True

    drive(kernel, body)
    kernel.run()


def test_disabled_manager_never_acts():
    kernel, manager = make_manager(enabled=False)
    rule = IsolationRule(isolation_level=50)

    def noisy():
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.HOLD)
        yield Sleep(us=50_000)
        manager.update(pbox, "res", StateEvent.UNHOLD)
        manager.freeze(pbox)

    def victim():
        yield Sleep(us=1_000)
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.PREPARE)
        yield Sleep(us=60_000)
        manager.update(pbox, "res", StateEvent.ENTER)
        manager.freeze(pbox)

    drive(kernel, noisy)
    drive(kernel, victim)
    kernel.run(until_us=200_000)
    assert manager.stats["actions"] == 0
    assert manager.stats["penalties_applied"] == 0


def test_release_removes_pbox_from_competitor_map():
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)

    def body():
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.PREPARE)
        manager.release(pbox)
        assert "res" not in manager.competitor_map
        yield Compute(us=10)

    drive(kernel, body)
    kernel.run()


def test_take_action_skips_self_penalty():
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)

    def body():
        pbox = manager.create(rule)
        manager.activate(pbox)
        yield Sleep(us=1_000)
        manager.take_action(pbox, pbox, "res")
        assert pbox.penalties_received == 0

    drive(kernel, body)
    kernel.run()


def test_action_not_stacked_while_pending():
    kernel, manager = make_manager()
    rule = IsolationRule(isolation_level=50)

    def body():
        noisy = manager.create(rule)
        victim = manager.create(rule)
        manager.activate(noisy)
        manager.activate(victim)
        noisy.holders["res"] = 0  # keep the penalty from being served
        yield Sleep(us=1_000)
        victim.defer_time_us = 500
        manager.take_action(noisy, victim, "res")
        first = noisy.pending_penalty_us
        assert first > 0
        manager.take_action(noisy, victim, "res")
        assert noisy.pending_penalty_us == first  # not stacked

    drive(kernel, body)
    kernel.run(until_us=10_000)
