"""Scheduler-seam differential and EEVDF property tests.

Two halves, matching the seam's two claims:

1. **cfs is the pre-seam scheduler, bit for bit.**  Every pre-seam
   golden case replays to its committed digest with the policy
   selected *explicitly* (``sched="cfs"``) and the kernel's inlined
   head-of-queue dispatch shortcut disabled -- so the differential
   simultaneously proves that the seam's explicit selection equals the
   default path and that :meth:`RunQueue.pick_for_core` is
   behaviourally identical to the fast path it shadows.

2. **eevdf honors its invariants under arbitrary schedules.**  The
   queue-level hypothesis suite drives push / pick / charge
   interleavings and pins: virtual clocks never move backwards,
   per-thread eligibility/deadline stamps are monotone, picking is
   work-conserving (a non-empty feasible queue always yields a
   thread), and no thread starves (every continuously-runnable thread
   is served within a bounded number of picks).  A full-kernel run
   re-checks starvation end to end, and the committed c18/c20 golden
   pair proves the policy actually diverges from cfs on a contended
   case (a pin of a policy whose schedule never differs would be
   vacuous).
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.golden import first_divergence, run_golden_case
from repro.sim.kernel import Kernel
from repro.sim.scheduler import (
    Core,
    EevdfRunQueue,
    RunQueue,
    SCHED_POLICIES,
    make_run_queue,
)
from repro.sim.syscalls import Compute, Sleep
from repro.sim.thread import ThreadState

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: The pre-seam corpus: the 17 cases that existed before the scheduler
#: seam landed (their frozen digests live in test_golden_traces.py's
#: PRE_SEAM_DIGESTS table; here the committed documents are the
#: reference, so the two suites catch a drifting corpus from both
#: ends).
PRE_SEAM_CASES = tuple("c%d" % i for i in range(1, 18))

#: Cheap, structurally diverse representatives kept in the fast loop
#: (`pytest -m "not slow"`); the rest of the corpus carries a `slow`
#: mark.  CI's sched-matrix job and the full tier-1 run execute the
#: whole file, so all 17 differentials still gate every change.
_FAST_DIFFERENTIAL_CASES = frozenset({"c1", "c3", "c5", "c14", "c17"})

_DIFFERENTIAL_PARAMS = tuple(
    case_id if case_id in _FAST_DIFFERENTIAL_CASES
    else pytest.param(case_id, marks=pytest.mark.slow)
    for case_id in PRE_SEAM_CASES
)


def _load_golden(case_id):
    with open(os.path.join(GOLDEN_DIR, "%s.json" % case_id)) as handle:
        return json.load(handle)


# ---------------------------------------------------------------------------
# Half 1: the cfs differential against the committed corpus.


@pytest.mark.parametrize("case_id", _DIFFERENTIAL_PARAMS)
def test_cfs_explicit_with_fast_path_disabled_matches_corpus(case_id):
    """Explicit cfs + disabled dispatch shortcut == committed digest.

    ``_fifo_fast_path = False`` forces every dispatch through
    :meth:`RunQueue.pick_for_core`; a digest match therefore proves
    the general scan and the inlined shortcut make identical decisions
    on the full corpus, and that selecting ``cfs`` by name is the
    default path.
    """
    golden = _load_golden(case_id)

    def disable_fast_path(env):
        env.kernel._fifo_fast_path = False

    actual = run_golden_case(case_id, golden["duration_s"],
                             golden["seed"], observer=disable_fast_path,
                             sched="cfs")
    assert first_divergence(golden, actual) is None, (
        "cfs with the dispatch fast path disabled diverged from the "
        "committed corpus on %s: pick_for_core is no longer equivalent "
        "to the inlined shortcut" % case_id)
    assert actual["digest"] == golden["digest"]


def test_policy_registry_capabilities():
    assert sorted(SCHED_POLICIES) == ["cfs", "eevdf"]
    assert RunQueue.fifo_fast_path is True
    assert EevdfRunQueue.fifo_fast_path is False
    with pytest.raises(ValueError):
        make_run_queue("o1-lottery")


def test_eevdf_pin_diverges_from_cfs():
    """The c18/c20 pair differ only in (sched, cores) -- and in digest.

    c20 exists to lock the EEVDF schedule down; that is only a real
    pin because the schedule differs from what cfs produces.  The
    corpus documents carry distinct digests, which this asserts so a
    future change that silently degenerates eevdf into FIFO (it
    happened during development: without the place_entity rule the
    virtual clock outruns every vruntime and deadlines follow arrival
    order exactly) turns the golden pair into a loud failure here.
    """
    cfs_doc = _load_golden("c18")
    eevdf_doc = _load_golden("c20")
    assert eevdf_doc["digest"] != cfs_doc["digest"]


# ---------------------------------------------------------------------------
# Half 2: EEVDF queue-level invariants under hypothesis.


class _FakeThread:
    """The thread-field slice the scheduler protocol is allowed to read."""

    __slots__ = ("tid", "state", "affinity", "demoted_until_us",
                 "vruntime_us", "v_eligible_us", "v_deadline_us")

    def __init__(self, tid):
        self.tid = tid
        self.state = ThreadState.NEW
        self.affinity = None
        self.demoted_until_us = 0
        self.vruntime_us = 0
        self.v_eligible_us = 0
        self.v_deadline_us = 0

    def __repr__(self):
        return "F%d" % self.tid


#: One scripted step: either push thread ``i`` (if not queued) or pick
#: a thread and charge it ``ran_us`` of service, re-queueing it.
_STEPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 5)),
        st.tuples(st.just("pick"), st.integers(1, 2_000)),
    ),
    min_size=1, max_size=200,
)


@settings(max_examples=80, deadline=None)
@given(steps=_STEPS)
def test_eevdf_clocks_and_stamps_are_monotone(steps):
    """vtime, per-thread vruntime, and per-thread stamps never regress,
    and picking is work-conserving on an unconstrained queue."""
    queue = EevdfRunQueue(slice_us=1_000)
    core = Core(0)
    threads = {i: _FakeThread(i) for i in range(6)}
    queued = set()
    last_stamp = {}
    for op, arg in steps:
        vtime_before = queue.vtime_us
        if op == "push":
            if arg in queued:
                continue
            thread = threads[arg]
            vruntime_before = thread.vruntime_us
            queue.push(thread)
            queued.add(arg)
            assert thread.vruntime_us >= vruntime_before
            stamp = (thread.v_eligible_us, thread.v_deadline_us)
            previous = last_stamp.get(arg)
            if previous is not None:
                assert stamp >= previous, (
                    "re-push moved thread %d's stamps backwards" % arg)
            last_stamp[arg] = stamp
            assert thread.v_deadline_us == \
                thread.v_eligible_us + queue.slice_us
        else:
            picked = queue.pick_for_core(core)
            if not queued:
                assert picked is None
                continue
            # Work conservation: every queued thread is feasible here.
            assert picked is not None
            queued.discard(picked.tid)
            queue.charge(picked, arg)
            assert picked.vruntime_us >= picked.v_eligible_us
        assert queue.vtime_us >= vtime_before, "virtual clock regressed"


@settings(max_examples=40, deadline=None)
@given(population=st.integers(2, 8), ran_us=st.integers(1, 1_500),
       rounds=st.integers(30, 120))
def test_eevdf_no_starvation_uniform_service(population, ran_us, rounds):
    """Under homogeneous slices, every thread is served every window.

    Each pick charges the same service amount and immediately re-queues
    the thread (the saturated-CPU steady state with equal demand --
    what the kernel produces, since it charges actual CPU consumed,
    capped by one quantum).  A waiting thread's deadline is fixed while
    everyone else's grows with service, so any window of ``2 *
    population`` consecutive picks must serve every thread at least
    once; pick-count starvation would mean the deadline ordering broke.
    """
    queue = EevdfRunQueue(slice_us=1_000)
    core = Core(0)
    threads = [_FakeThread(i) for i in range(population)]
    for thread in threads:
        queue.push(thread)
    window = []
    for _ in range(rounds):
        picked = queue.pick_for_core(core)
        assert picked is not None
        queue.charge(picked, ran_us)
        queue.push(picked)
        window.append(picked.tid)
        if len(window) >= 2 * population:
            recent = set(window[-2 * population:])
            assert recent == set(range(population)), (
                "threads %s starved over a %d-pick window"
                % (sorted(set(range(population)) - recent),
                   2 * population))


@settings(max_examples=60, deadline=None)
@given(population=st.integers(2, 8),
       charges=st.lists(st.integers(1, 1_500), min_size=20, max_size=120))
def test_eevdf_service_lag_is_bounded(population, charges):
    """Heterogeneous service keeps vruntime spread bounded (no
    starvation in service units).

    With per-pick service amounts chosen adversarially, pick *counts*
    are legitimately uneven (EEVDF equalizes service, not picks), but
    the service spread may not diverge: the picked thread always holds
    the globally minimum eligible stamp, so after its charge it can
    overshoot the laggard by at most one charge; the place rule keeps
    re-entering threads pinned to the virtual clock.  Unbounded spread
    is exactly what starvation looks like in service units.
    """
    queue = EevdfRunQueue(slice_us=1_000)
    core = Core(0)
    threads = [_FakeThread(i) for i in range(population)]
    for thread in threads:
        queue.push(thread)
    bound = max(charges) + queue.slice_us
    for ran_us in charges:
        picked = queue.pick_for_core(core)
        assert picked is not None
        queue.charge(picked, ran_us)
        queue.push(picked)
        spread = max(t.vruntime_us for t in threads) \
            - min(t.vruntime_us for t in threads)
        assert spread <= bound, (
            "service spread %d exceeded bound %d: some thread is "
            "falling ever further behind" % (spread, bound))


def test_eevdf_latecomer_leapfrogs_overserved_thread():
    """A fresh thread outranks one that ran past its fair share.

    Divergence from FIFO needs run-queue contention: with a competitor
    queued, the virtual clock advances at half the hog's service rate,
    so the hog's re-push stamps land a full slice *ahead* of the clock
    while a latecomer is placed *at* the clock with an earlier
    deadline.  (A lone runner accrues zero lag -- the clock tracks it
    at full rate -- which is why the c20 golden pins a saturated
    3-core case.)
    """
    queue = EevdfRunQueue(slice_us=1_000)
    core = Core(0)
    hog, waiter, latecomer = (_FakeThread(i) for i in range(3))
    queue.push(hog)
    queue.push(waiter)
    picked = queue.pick_for_core(core)
    assert picked is hog  # deadline tie -> arrival order
    queue.charge(hog, 1_000)
    queue.push(hog)  # hog now a full slice ahead of the virtual clock
    queue.push(latecomer)
    order = [queue.pick_for_core(core).tid for _ in range(3)]
    assert order.index(latecomer.tid) < order.index(hog.tid), (
        "expected the latecomer to be served before the over-served "
        "hog, got pick order %s" % order)


def test_eevdf_demoted_threads_yield_to_normal_ones():
    queue = EevdfRunQueue(slice_us=1_000)
    core = Core(0)
    demoted, normal = _FakeThread(0), _FakeThread(1)
    queue.push(demoted)
    queue.push(normal)
    demoted.demoted_until_us = 10 ** 9  # demoted far past _now() == 0
    assert queue.pick_for_core(core) is normal
    assert queue.pick_for_core(core) is demoted  # fallback when alone
    assert queue.pick_for_core(core) is None


def test_eevdf_respects_affinity_and_reservation():
    queue = EevdfRunQueue(slice_us=1_000)
    pinned = _FakeThread(0)
    pinned.affinity = {1}
    queue.push(pinned)
    core0, core1 = Core(0), Core(1)
    assert queue.pick_for_core(core0) is None
    assert queue.pick_for_core(core1) is pinned
    reserved_core = Core(0)
    reserved_core.reserved_for = "tenant-x"
    outsider = _FakeThread(1)
    queue.push(outsider)
    assert queue.pick_for_core(reserved_core) is None
    assert queue.pick_for_core(core0) is outsider


# ---------------------------------------------------------------------------
# Full-kernel EEVDF: end-to-end starvation check on a saturated core.


def test_eevdf_full_kernel_serves_every_thread():
    """On one eevdf core, compute hogs cannot starve periodic sleepers."""
    kernel = Kernel(cores=1, seed=7, sched="eevdf")
    progress = {"hog": 0, "sleeper": 0}

    def hog():
        for _ in range(200):
            yield Compute(us=900)
            progress["hog"] += 1

    def sleeper():
        for _ in range(50):
            yield Sleep(us=500)
            yield Compute(us=100)
            progress["sleeper"] += 1

    kernel.spawn(hog, name="hog-a")
    kernel.spawn(hog, name="hog-b")
    kernel.spawn(sleeper, name="sleeper")
    kernel.run(until_us=150_000)
    assert progress["hog"] > 0
    assert progress["sleeper"] >= 40, (
        "the sleeper made only %d/50 iterations by 150ms on a "
        "saturated eevdf core -- it is being starved"
        % progress["sleeper"])


def test_eevdf_full_kernel_deterministic():
    """Same seed + sched -> byte-identical final kernel state."""

    def build_and_run():
        kernel = Kernel(cores=2, seed=3, sched="eevdf")
        done = []

        def worker(i):
            def body():
                for _ in range(20 + i):
                    yield Compute(us=150 + 17 * i)
                    yield Sleep(us=40)
                done.append(i)
            return body

        for i in range(6):
            kernel.spawn(worker(i), name="w%d" % i)
        kernel.run(until_us=100_000)
        return done, kernel.now_us, dict(kernel.stats), \
            kernel.run_queue.snapshot_state()["vtime_us"]

    assert build_and_run() == build_and_run()
