"""Tests for the priority-demotion penalty extension (paper Section 7).

The paper chose delay penalties over priority changes because a delay
has a "simpler effect ... easier to predict".  The extension implements
the alternative -- demoting the noisy pBox's thread in the scheduler
for the penalty duration -- and these tests verify both its mechanics
and the paper's argument: demotion only bites when the CPU is
contended, so on lock-bound interference it underperforms delays.
"""

import pytest

from repro.core import IsolationRule, PBoxManager, StateEvent
from repro.sim import Compute, Kernel, Now, Sleep
from repro.sim.clock import seconds


def test_manager_rejects_unknown_penalty_mode():
    kernel = Kernel(cores=1)
    with pytest.raises(ValueError):
        PBoxManager(kernel, penalty_mode="nice")


def test_demoted_thread_yields_cpu_to_normal_threads():
    kernel = Kernel(cores=1)
    finish = {}

    def worker(name):
        def body():
            yield Compute(us=10_000)
            finish[name] = yield Now()
        return body

    demoted = kernel.spawn(worker("demoted"))
    demoted.demoted_until_us = seconds(1)
    kernel.spawn(worker("normal"))
    kernel.run()
    # The normal thread gets the core (modulo one quantum the demoted
    # thread may have grabbed while alone) until it finishes.
    assert finish["normal"] <= 12_000
    assert finish["demoted"] == 20_000


def test_demotion_expires():
    kernel = Kernel(cores=1)
    finish = {}

    def big(name, us):
        def body():
            yield Compute(us=us)
            finish[name] = yield Now()
        return body

    demoted = kernel.spawn(big("was-demoted", 5_000))
    demoted.demoted_until_us = 3_000
    kernel.spawn(big("normal", 50_000))
    kernel.run()
    # After 3 ms the demotion lapses and round-robin resumes, so the
    # formerly-demoted thread finishes long before the big normal one.
    assert finish["was-demoted"] < finish["normal"]


def test_demoted_threads_run_when_cpu_idle():
    kernel = Kernel(cores=2)
    finish = {}

    def body():
        yield Compute(us=4_000)
        finish["t"] = yield Now()

    thread = kernel.spawn(body)
    thread.demoted_until_us = seconds(10)
    kernel.run()
    # No competition: demotion must not starve the thread outright.
    assert finish["t"] == 4_000


def test_priority_mode_demotes_instead_of_delaying():
    kernel = Kernel(cores=2)
    manager = PBoxManager(kernel, penalty_mode="priority")
    rule = IsolationRule(isolation_level=50)
    boxes = {}

    def noisy():
        pbox = manager.create(rule)
        boxes["noisy"] = pbox
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.HOLD)
        yield Sleep(us=40_000)
        manager.update(pbox, "res", StateEvent.UNHOLD)
        manager.freeze(pbox)
        yield Compute(us=1_000)

    def victim():
        yield Sleep(us=1_000)
        pbox = manager.create(rule)
        manager.activate(pbox)
        manager.update(pbox, "res", StateEvent.PREPARE)
        yield Sleep(us=50_000)
        manager.update(pbox, "res", StateEvent.ENTER)
        manager.freeze(pbox)

    noisy_thread = kernel.spawn(noisy, name="noisy")
    kernel.spawn(victim, name="victim")
    kernel.run(until_us=seconds(1))
    assert boxes["noisy"].penalties_received >= 1
    # The penalty took the demotion path, not the sleep path.
    assert boxes["noisy"].pending_penalty_us == 0
    assert noisy_thread.demoted_until_us > 40_000


def test_delay_beats_priority_on_lock_bound_interference():
    """The paper's design argument: on a lock-bound case, demotion does
    not stop the noisy activity from re-acquiring the resource (the CPU
    is not the bottleneck), so delays mitigate better."""
    from repro.cases import Solution, get_case, run_case

    original_init = PBoxManager.__init__

    def run_with_mode(mode):
        def patched(self, *args, **kwargs):
            kwargs.setdefault("penalty_mode", mode)
            original_init(self, *args, **kwargs)

        PBoxManager.__init__ = patched
        try:
            return run_case(get_case("c1"), Solution.PBOX,
                            duration_s=4).victim_mean_us
        finally:
            PBoxManager.__init__ = original_init

    delay_latency = run_with_mode("delay")
    priority_latency = run_with_mode("priority")
    assert delay_latency < priority_latency
