"""Restore equality: checkpointed runs reproduce the golden corpus.

Two corpus-wide contracts from the checkpoint layer:

1. *Checkpoint purity* -- running a case under the stepped
   :class:`~repro.ckpt.driver.CheckpointingDriver` (pausing every 250 ms
   of virtual time to walk and serialize the full simulation state)
   produces a golden document byte-identical to the committed corpus.
   The walkers consume no entropy: no RNG draws, no sequence numbers,
   no tracepoints.

2. *Fresh-process restore* -- a checkpoint serialized mid-run can be
   loaded in a brand-new process, resumed, and the completed run's
   digest equals the uncheckpointed run's.  One subprocess resumes every
   case's mid-run checkpoint so the restore path is proven against
   process boundaries, not just in-memory object reuse.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.ckpt import (
    Checkpoint,
    CheckpointStore,
    checkpoint_run,
    resume_case,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

_RESUME_SCRIPT = """\
import json, sys
from repro.ckpt import CheckpointStore, resume_case

store = CheckpointStore(sys.argv[1])
manifest = json.loads(sys.argv[2])
out = {}
for case_id in sorted(manifest):
    checkpoint = store.load(manifest[case_id])
    outcome = resume_case(checkpoint)
    document = outcome["document"]
    out[case_id] = {"digest": document["digest"],
                    "events": document["events"],
                    "stats": document["stats"]}
print(json.dumps(out))
"""


def _corpus_case_ids():
    names = [name for name in os.listdir(GOLDEN_DIR)
             if name.endswith(".json")]
    return sorted((name[:-len(".json")] for name in names),
                  key=lambda cid: int(cid[1:]))


def _load_golden(case_id):
    with open(os.path.join(GOLDEN_DIR, case_id + ".json")) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def corpus_checkpoints(tmp_path_factory):
    """One checkpointed run per corpus case; returns docs + a store.

    The single expensive pass behind both contracts: each case runs
    once under the checkpointing driver, its document is kept for the
    purity comparison, and its middle checkpoint (cut at 750 ms of the
    1.5 s golden run) is persisted for the fresh-process resume test.
    """
    root = str(tmp_path_factory.mktemp("ckpt-corpus"))
    store = CheckpointStore(root)
    documents = {}
    manifest = {}
    for case_id in _corpus_case_ids():
        golden = _load_golden(case_id)
        outcome = checkpoint_run(case_id, duration_s=golden["duration_s"],
                                 seed=golden["seed"])
        documents[case_id] = outcome["document"]
        checkpoints = outcome["driver"].checkpoints
        assert checkpoints, "no barrier fired for %s" % case_id
        middle = checkpoints[len(checkpoints) // 2]
        manifest[case_id] = store.save(middle, label=case_id)
    return {"documents": documents, "store": store, "manifest": manifest}


@pytest.mark.slow
@pytest.mark.parametrize("case_id", _corpus_case_ids())
def test_checkpointed_run_matches_golden(corpus_checkpoints, case_id):
    """Stepped execution + state walks do not perturb the stream."""
    golden = _load_golden(case_id)
    document = corpus_checkpoints["documents"][case_id]
    assert document["digest"] == golden["digest"], \
        "checkpointing perturbed %s" % case_id
    assert document["events"] == golden["events"]
    assert document["checkpoints"] == golden["checkpoints"]
    assert document["stats"] == golden["stats"]


@pytest.mark.slow
def test_fresh_process_resume_matches_golden(corpus_checkpoints):
    """A new process restores every case and completes bit-identically."""
    store = corpus_checkpoints["store"]
    manifest = corpus_checkpoints["manifest"]
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep \
        + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _RESUME_SCRIPT, store.root,
         json.dumps(manifest)],
        capture_output=True, text=True, env=env, timeout=600)
    assert proc.returncode == 0, proc.stderr
    resumed = json.loads(proc.stdout)
    assert sorted(resumed, key=lambda cid: int(cid[1:])) \
        == _corpus_case_ids()
    for case_id, summary in sorted(resumed.items()):
        golden = _load_golden(case_id)
        assert summary["digest"] == golden["digest"], \
            "fresh-process resume diverged for %s" % case_id
        assert summary["events"] == golden["events"]
        assert summary["stats"] == golden["stats"]


def test_checkpoint_json_roundtrip_preserves_identity(corpus_checkpoints):
    """Serialize -> load returns the same content address and payload."""
    store = corpus_checkpoints["store"]
    case_id = _corpus_case_ids()[0]
    checkpoint_id = corpus_checkpoints["manifest"][case_id]
    loaded = store.load(checkpoint_id)
    assert loaded.checkpoint_id == checkpoint_id
    rebuilt = Checkpoint.from_json_dict(loaded.to_json_dict())
    assert rebuilt.checkpoint_id == checkpoint_id
    assert store.latest(case_id).checkpoint_id == checkpoint_id


def test_in_process_resume_matches_plain_run(corpus_checkpoints):
    """resume_case in this process also reproduces the golden digest."""
    case_id = _corpus_case_ids()[0]
    golden = _load_golden(case_id)
    checkpoint = corpus_checkpoints["store"].load(
        corpus_checkpoints["manifest"][case_id])
    outcome = resume_case(checkpoint)
    assert outcome["document"]["digest"] == golden["digest"]
    assert outcome["document"]["events"] == golden["events"]


def test_checkpoint_refuses_unknown_schema():
    payload = {"schema": 999, "spec": {}, "cut_us": 0, "events": 0,
               "cut_digest": "", "trace_checkpoints": [], "state": {},
               "state_digest": ""}
    with pytest.raises(ValueError):
        Checkpoint.from_json_dict(payload)


def test_store_latest_missing_label(tmp_path):
    store = CheckpointStore(str(tmp_path / "empty"))
    assert store.latest("nope") is None
    assert store.ids() == []
