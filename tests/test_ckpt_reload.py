"""Rule hot-reload at checkpoint barriers.

Three contracts:

- reloading a rule set identical to the live one is a *pure no-op*: the
  golden digest of a run that reloads at every barrier equals the
  committed corpus digest, and the epoch never moves;
- an effective reload flushes every penalty armed under the old rule
  (pending delay dropped and its budget released, defer window clamped,
  demotion lifted) -- asserted both at the unit level against a stub
  shard and end-to-end under a penalty-injecting chaos cocktail;
- the penalty-lifetime invariant -- no penalty outlives the rule that
  armed it -- holds at every barrier and at the end of the chaos run.
"""

import json
import os

import pytest

from repro.ckpt import RuleReloader, checkpoint_run
from repro.core.budget import PenaltyBudget
from repro.core.rules import IsolationRule, Metric, RuleType

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
CASE_ID = "c1"


def _load_golden(case_id):
    with open(os.path.join(GOLDEN_DIR, case_id + ".json")) as handle:
        return json.load(handle)


# -- rule payload plumbing ------------------------------------------------

def test_rule_dict_roundtrip_and_same_as():
    rule = IsolationRule(isolation_level=30, metric=Metric.TAIL)
    rebuilt = IsolationRule.from_dict(rule.to_dict())
    assert rebuilt.same_as(rule)
    assert rebuilt is not rule
    assert not rebuilt.same_as(IsolationRule(isolation_level=31,
                                             metric=Metric.TAIL))
    assert not rebuilt.same_as(IsolationRule(isolation_level=30))
    assert rule.to_dict() == {"isolation_level": 30,
                              "rule_type": RuleType.RELATIVE.value,
                              "metric": Metric.TAIL.value}


# -- unit-level flush against a stub shard --------------------------------

class _StubKernel:
    def __init__(self, now_us):
        self.now_us = now_us


class _StubThread:
    def __init__(self):
        self.demoted_until_us = 900_000


class _StubPBox:
    def __init__(self, psid, rule):
        self.psid = psid
        self.rule = rule
        self.thread = _StubThread()
        self.pending_penalty_us = 4_000
        self.pending_penalty_flow = 17
        self.pending_since_us = 100_000
        self.penalty_until_us = 999_000


class _StubShard:
    def __init__(self, pboxes, now_us):
        self.kernel = _StubKernel(now_us)
        self._pboxes = {pbox.psid: pbox for pbox in pboxes}
        self.penalty_budget = PenaltyBudget(cap_us=100_000)
        self._safe_until = {pbox.psid: now_us + 50_000 for pbox in pboxes}
        self._heal_trend = {(pbox.psid, "key"): object() for pbox in pboxes}


def test_effective_reload_flushes_old_rule_penalties():
    pbox = _StubPBox(1, IsolationRule(isolation_level=50))
    shard = _StubShard([pbox], now_us=500_000)
    shard.penalty_budget.reserve(pbox.pending_penalty_us)
    reloader = RuleReloader(shard)

    result = reloader.reload(IsolationRule(isolation_level=30))
    assert not result.noop
    assert result.changed_psids == [1]
    assert reloader.epoch == 1
    assert pbox.rule.isolation_level == 30
    # Penalty machinery of the old rule is fully retired:
    assert pbox.pending_penalty_us == 0
    assert pbox.pending_penalty_flow is None
    assert shard.penalty_budget.outstanding_us == 0
    assert pbox.penalty_until_us == 500_000
    assert pbox.thread.demoted_until_us == 0
    assert pbox.psid not in shard._safe_until
    assert not shard._heal_trend
    assert reloader.check_invariant() == []


def test_identical_reload_is_pure_noop():
    pbox = _StubPBox(1, IsolationRule(isolation_level=50))
    shard = _StubShard([pbox], now_us=500_000)
    reloader = RuleReloader(shard)

    result = reloader.reload(IsolationRule(isolation_level=50))
    assert result.noop
    assert reloader.epoch == 0
    # Nothing was flushed:
    assert pbox.pending_penalty_us == 4_000
    assert pbox.thread.demoted_until_us == 900_000
    assert pbox.psid in shard._safe_until

    # A callable returning None skips the pBox entirely.
    result = reloader.reload(lambda pbox: None)
    assert result.noop
    assert len(reloader.history) == 2


def test_invariant_flags_stale_pending_penalty():
    pbox = _StubPBox(1, IsolationRule(isolation_level=50))
    shard = _StubShard([pbox], now_us=500_000)
    reloader = RuleReloader(shard)
    reloader.reload(IsolationRule(isolation_level=30))
    # Simulate a buggy flush: a penalty queued *before* the change.
    pbox.pending_penalty_us = 2_000
    pbox.pending_since_us = 100_000
    violations = reloader.check_invariant()
    assert len(violations) == 1
    assert "predates the rule change" in violations[0]
    # A penalty armed after the change is legitimate.
    pbox.pending_since_us = 600_000
    assert reloader.check_invariant() == []


# -- end-to-end: barriers on a live run -----------------------------------

@pytest.mark.slow
def test_noop_reload_barriers_preserve_golden_digest():
    golden = _load_golden(CASE_ID)
    reloaders = []

    def barrier(env, t_us):
        if not reloaders:
            reloaders.append(RuleReloader(env.runtime.manager))
        result = reloaders[0].reload(lambda pbox: pbox.rule.to_dict(),
                                     now_us=t_us)
        assert result.noop

    outcome = checkpoint_run(CASE_ID, duration_s=golden["duration_s"],
                             seed=golden["seed"], barriers=[barrier])
    assert outcome["document"]["digest"] == golden["digest"]
    assert outcome["document"]["stats"] == golden["stats"]
    assert reloaders[0].epoch == 0
    assert len(reloaders[0].history) == len(outcome["driver"].checkpoints)


@pytest.mark.slow
def test_live_reloads_never_leak_penalties():
    """Alternating reloads under penalty misfires: invariant holds."""
    golden = _load_golden(CASE_ID)
    reloaders = []
    observed_pending = []

    def barrier(env, t_us):
        if not reloaders:
            reloaders.append(RuleReloader(env.runtime.manager))
        reloader = reloaders[0]
        for shard in reloader._shards():
            for psid in sorted(shard._pboxes):
                if shard._pboxes[psid].pending_penalty_us > 0:
                    observed_pending.append((t_us, psid))
        level = 30 if (t_us // 250_000) % 2 else 80
        result = reloader.reload(IsolationRule(isolation_level=level),
                                 now_us=t_us)
        assert not result.noop
        assert reloader.check_invariant() == []

    outcome = checkpoint_run(
        CASE_ID, duration_s=golden["duration_s"], seed=golden["seed"],
        faults="penalty_misfire", barriers=[barrier])
    reloader = reloaders[0]
    assert reloader.epoch == len(reloader.history)
    assert reloader.epoch >= 2
    assert reloader.check_invariant() == []
    assert outcome["harness"].suite.violations == []
    # Non-vacuous: at least one barrier actually saw a pending penalty
    # for the flush to retire (the misfire cocktail guarantees arms).
    assert observed_pending, \
        "no barrier observed a pending penalty; the flush leg is vacuous"
