"""Property-based tests for RWLock and TaskQueue invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim import Compute, Kernel, RWLock, Sleep, TaskQueue

SETTINGS = settings(max_examples=30, deadline=None)

# Reader/writer workloads: (is_writer, arrival gap, hold time).
rw_profile = st.tuples(st.booleans(), st.integers(0, 3_000),
                       st.integers(1, 2_000))


@SETTINGS
@given(st.lists(rw_profile, min_size=1, max_size=8),
       st.sampled_from(["reader_pref", "writer_pref"]))
def test_rwlock_exclusion_invariant(profiles, policy):
    """Writers are always alone; readers never overlap a writer."""
    kernel = Kernel(cores=4)
    lock = RWLock(kernel, policy=policy)
    state = {"readers": 0, "writers": 0, "violations": 0}

    def check():
        if state["writers"] > 1:
            state["violations"] += 1
        if state["writers"] >= 1 and state["readers"] >= 1:
            state["violations"] += 1

    def worker(is_writer, gap_us, hold_us):
        def body():
            if gap_us:
                yield Sleep(us=gap_us)
            if is_writer:
                yield from lock.acquire_exclusive()
                state["writers"] += 1
                check()
                yield Compute(us=hold_us)
                state["writers"] -= 1
                lock.release_exclusive()
            else:
                yield from lock.acquire_shared()
                state["readers"] += 1
                check()
                yield Compute(us=hold_us)
                state["readers"] -= 1
                lock.release_shared()
        return body

    for is_writer, gap, hold in profiles:
        kernel.spawn(worker(is_writer, gap, hold))
    kernel.run(until_us=60_000_000)
    assert state["violations"] == 0
    assert lock.reader_count == 0
    assert lock.writer is None


@SETTINGS
@given(st.lists(st.integers(0, 100), min_size=1, max_size=30),
       st.integers(1, 4))
def test_task_queue_delivers_everything_exactly_once(items, consumers):
    """Every queued item is consumed exactly once, across any number of
    consumers, regardless of put timing."""
    kernel = Kernel(cores=4)
    queue = TaskQueue(kernel)
    consumed = []
    remaining = {"n": len(items)}

    def consumer():
        def body():
            while remaining["n"] > 0:
                item = yield from queue.get()
                consumed.append(item)
                remaining["n"] -= 1
                yield Compute(us=10)
        return body

    def producer():
        rng = kernel.rng("producer")
        for item in items:
            yield Sleep(us=rng.randint(0, 500))
            queue.put(item)

    for _ in range(consumers):
        kernel.spawn(consumer())
    kernel.spawn(producer)
    kernel.run(until_us=60_000_000)
    assert sorted(consumed) == sorted(items)
    assert len(queue) == 0


@SETTINGS
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 100)),
                min_size=1, max_size=20))
def test_task_queue_admission_preserves_items(tagged_items):
    """Inadmissible items are deferred, never lost or duplicated."""
    kernel = Kernel(cores=2)
    allow_all_after = 10_000

    def admission(item):
        deferred, _value = item
        if not deferred:
            return True
        return kernel.now_us >= allow_all_after

    queue = TaskQueue(kernel, admission=admission)
    total = len(tagged_items)
    consumed = []

    def consumer():
        while len(consumed) < total:
            item = yield from queue.get()
            consumed.append(item)

    for item in tagged_items:
        queue.put(item)
    kernel.spawn(consumer)
    kernel.run(until_us=60_000_000)
    assert sorted(consumed) == sorted(tagged_items)
    # Deferred items never jump ahead of admissible ones before the
    # window opens.
    deferred_times = [i for i, (deferred, _v) in enumerate(consumed)
                      if deferred]
    if deferred_times and any(not d for d, _v in tagged_items):
        first_deferred = consumed.index(
            next(item for item in consumed if item[0])
        )
        admissible_after = [item for item in consumed[first_deferred:]
                            if not item[0]]
        # All plain items drained before any deferred one was served.
        assert not admissible_after
