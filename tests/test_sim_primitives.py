"""Unit tests for futex-backed synchronization primitives."""

import pytest

from repro.sim import (
    Compute,
    Condition,
    Kernel,
    Mutex,
    Now,
    RWLock,
    Semaphore,
    Sleep,
    TaskQueue,
)


def test_mutex_provides_mutual_exclusion():
    kernel = Kernel(cores=4)
    mutex = Mutex(kernel)
    trace = []

    def worker(name):
        yield from mutex.acquire()
        trace.append(("enter", name, (yield Now())))
        yield Compute(us=1_000)
        trace.append(("exit", name, (yield Now())))
        mutex.release()

    for i in range(3):
        kernel.spawn(lambda i=i: worker("w%d" % i))
    kernel.run()
    # Critical sections never overlap: sorted enter/exit pairs alternate.
    events = sorted(trace, key=lambda e: e[2])
    for i in range(0, len(events), 2):
        assert events[i][0] == "enter"
        assert events[i + 1][0] == "exit"
        assert events[i][1] == events[i + 1][1]


def test_mutex_try_acquire():
    kernel = Kernel(cores=2)
    mutex = Mutex(kernel)
    results = {}

    def holder():
        yield from mutex.acquire()
        yield Sleep(us=5_000)
        mutex.release()

    def taster():
        yield Sleep(us=1_000)
        results["while_held"] = mutex.try_acquire()
        yield Sleep(us=10_000)
        results["after_release"] = mutex.try_acquire()
        mutex.release()

    kernel.spawn(holder)
    kernel.spawn(taster)
    kernel.run()
    assert results["while_held"] is False
    assert results["after_release"] is True


def test_mutex_release_unlocked_raises():
    kernel = Kernel(cores=1)
    mutex = Mutex(kernel)
    with pytest.raises(RuntimeError):
        mutex.release()


def test_rwlock_readers_share():
    kernel = Kernel(cores=4)
    lock = RWLock(kernel)
    concurrent = {"now": 0, "max": 0}

    def reader():
        yield from lock.acquire_shared()
        concurrent["now"] += 1
        concurrent["max"] = max(concurrent["max"], concurrent["now"])
        yield Sleep(us=2_000)
        concurrent["now"] -= 1
        lock.release_shared()

    for _ in range(3):
        kernel.spawn(reader)
    kernel.run()
    assert concurrent["max"] == 3


def test_rwlock_writer_excludes_readers():
    kernel = Kernel(cores=4)
    lock = RWLock(kernel)
    times = {}

    def writer():
        yield from lock.acquire_exclusive()
        yield Sleep(us=5_000)
        lock.release_exclusive()
        times["w_done"] = yield Now()

    def reader():
        yield Sleep(us=1_000)  # arrive while the writer holds the lock
        yield from lock.acquire_shared()
        times["r_in"] = yield Now()
        lock.release_shared()

    kernel.spawn(writer)
    kernel.spawn(reader)
    kernel.run()
    assert times["r_in"] >= 5_000


def test_rwlock_reader_pref_starves_writer():
    """A reader-preferring lock lets a reader stream delay writers (c8)."""
    kernel = Kernel(cores=4)
    lock = RWLock(kernel, policy="reader_pref")
    times = {}

    def reader(start_us):
        yield Sleep(us=start_us)
        yield from lock.acquire_shared()
        yield Sleep(us=3_000)
        lock.release_shared()

    def writer():
        yield Sleep(us=1_000)
        yield from lock.acquire_exclusive()
        times["w_in"] = yield Now()
        lock.release_exclusive()

    # Overlapping readers keep reader_count > 0 until 9 ms.
    for start in (0, 2_000, 4_000, 6_000):
        kernel.spawn(lambda s=start: reader(s))
    kernel.spawn(writer)
    kernel.run()
    assert times["w_in"] >= 9_000


def test_rwlock_writer_pref_blocks_new_readers():
    kernel = Kernel(cores=4)
    lock = RWLock(kernel, policy="writer_pref")
    times = {}

    def first_reader():
        yield from lock.acquire_shared()
        yield Sleep(us=5_000)
        lock.release_shared()

    def writer():
        yield Sleep(us=1_000)
        yield from lock.acquire_exclusive()
        yield Sleep(us=2_000)
        lock.release_exclusive()

    def late_reader():
        yield Sleep(us=2_000)  # arrives while the writer waits
        yield from lock.acquire_shared()
        times["late_in"] = yield Now()
        lock.release_shared()

    kernel.spawn(first_reader)
    kernel.spawn(writer)
    kernel.spawn(late_reader)
    kernel.run()
    # Late reader waits for the queued writer: 5 ms hold + 2 ms write.
    assert times["late_in"] >= 7_000


def test_semaphore_limits_concurrency():
    kernel = Kernel(cores=8)
    sem = Semaphore(kernel, units=2)
    concurrent = {"now": 0, "max": 0}

    def worker():
        yield from sem.acquire()
        concurrent["now"] += 1
        concurrent["max"] = max(concurrent["max"], concurrent["now"])
        yield Sleep(us=1_000)
        concurrent["now"] -= 1
        sem.release()

    for _ in range(6):
        kernel.spawn(worker)
    kernel.run()
    assert concurrent["max"] == 2
    assert sem.available == 2


def test_semaphore_multi_unit_acquire():
    kernel = Kernel(cores=2)
    sem = Semaphore(kernel, units=3)
    times = {}

    def big():
        yield Sleep(us=100)
        yield from sem.acquire(n=3)
        times["big_in"] = yield Now()
        sem.release(n=3)

    def small():
        yield from sem.acquire(n=1)
        yield Sleep(us=4_000)
        sem.release(n=1)

    kernel.spawn(small)
    kernel.spawn(big)
    kernel.run()
    assert times["big_in"] >= 4_000


def test_condition_wait_notify():
    kernel = Kernel(cores=2)
    mutex = Mutex(kernel)
    cond = Condition(kernel, mutex)
    state = {"ready": False}
    times = {}

    def consumer():
        yield from mutex.acquire()
        yield from cond.wait_for(lambda: state["ready"])
        times["consumed"] = yield Now()
        mutex.release()

    def producer():
        yield Sleep(us=3_000)
        yield from mutex.acquire()
        state["ready"] = True
        cond.notify_all()
        mutex.release()

    kernel.spawn(consumer)
    kernel.spawn(producer)
    kernel.run()
    assert times["consumed"] >= 3_000


def test_task_queue_fifo():
    kernel = Kernel(cores=2)
    queue = TaskQueue(kernel)
    got = []

    def consumer():
        for _ in range(3):
            item = yield from queue.get()
            got.append(item)

    def producer():
        for i in range(3):
            yield Sleep(us=1_000)
            queue.put(i)

    kernel.spawn(consumer)
    kernel.spawn(producer)
    kernel.run()
    assert got == [0, 1, 2]


def test_task_queue_admission_rotates_penalized_items():
    kernel = Kernel(cores=2)
    deny_until = {"t": 5_000}

    def admission(item):
        if item == "noisy":
            return kernel.now_us >= deny_until["t"]
        return True

    queue = TaskQueue(kernel, admission=admission)
    got = []

    def consumer():
        for _ in range(3):
            item = yield from queue.get()
            got.append((item, kernel.now_us))

    queue.put("noisy")
    queue.put("a")
    queue.put("b")
    kernel.spawn(consumer)
    kernel.run()
    assert [item for item, _ in got] == ["a", "b", "noisy"]
    noisy_time = dict(got)["noisy"]
    assert noisy_time >= 5_000


def test_task_queue_try_get():
    kernel = Kernel(cores=1)
    queue = TaskQueue(kernel)
    assert queue.try_get() is None
    queue.put("x")
    assert queue.try_get() == "x"
