"""Tests for the mergeable quantile sketch: merge algebra, canonical
bytes, percentile agreement with the exact metrics histogram."""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import Histogram
from repro.obs.sketch import QuantileSketch, merge_all

SETTINGS = settings(max_examples=60, deadline=None)

values_lists = st.lists(st.integers(0, 2_000_000), max_size=120)


def _sketch_of(values, name="s"):
    sketch = QuantileSketch(name)
    for value in values:
        sketch.record(value)
    return sketch


def test_record_tracks_count_total_and_extremes():
    sketch = _sketch_of([5, 100, 7_000])
    assert sketch.count == 3
    assert len(sketch) == 3
    assert sketch.total == 7_105
    assert sketch.min_value == 5
    assert sketch.max_value == 7_000
    assert sketch.mean() == pytest.approx(7_105 / 3)


def test_negative_values_clamp_to_zero():
    sketch = _sketch_of([-42])
    assert sketch.count == 1
    assert sketch.min_value == 0
    assert sketch.total == 0


def test_empty_sketch_is_benign():
    sketch = QuantileSketch()
    assert sketch.mean() == 0.0
    assert sketch.percentile(95) == 0
    assert sketch.to_bytes() == merge_all([]).to_bytes()


def test_percentile_matches_histogram_convention():
    # The sketch shares the metrics histogram's bucket layout and
    # nearest-rank upper-bound convention, so on the same samples the
    # two must agree exactly.
    rng = random.Random(11)
    samples = [rng.randint(0, 500_000) for _ in range(3_000)]
    sketch = _sketch_of(samples)
    histogram = Histogram("h")
    histogram.record_many(samples)
    for p in (0, 50, 90, 95, 99, 100):
        assert sketch.percentile(p) == histogram.percentile(p)


def test_percentile_rejects_out_of_range():
    sketch = _sketch_of([1])
    with pytest.raises(ValueError):
        sketch.percentile(101)


def test_merge_equals_combined_recording():
    rng = random.Random(3)
    first = [rng.randint(0, 50_000) for _ in range(400)]
    second = [rng.randint(0, 50_000) for _ in range(300)]
    merged = _sketch_of(first).merge(_sketch_of(second))
    combined = _sketch_of(first + second)
    assert merged.buckets == combined.buckets
    assert merged.to_bytes() == combined.to_bytes()


def test_copy_is_independent():
    sketch = _sketch_of([10, 20])
    duplicate = sketch.copy()
    duplicate.record(30)
    assert sketch.count == 2
    assert duplicate.count == 3


def test_compact_roundtrip_preserves_bytes():
    sketch = _sketch_of([0, 3, 17, 17, 40_000, 2_000_000])
    rebuilt = QuantileSketch.from_compact(sketch.to_compact())
    assert rebuilt.buckets == sketch.buckets
    assert rebuilt.to_bytes() == sketch.to_bytes()


def test_compact_delta_encoding_shape():
    sketch = _sketch_of([0, 1, 1, 100])
    compact = sketch.to_compact()
    # Gaps after the first index are positive (sorted, deduplicated).
    assert all(delta > 0 for delta in compact["b"][1:])
    assert sum(compact["c"]) == sketch.count
    # Canonical bytes are minified, key-sorted JSON of this form.
    assert json.loads(sketch.to_bytes().decode()) == compact


@SETTINGS
@given(values_lists, st.randoms(use_true_random=False))
def test_any_merge_order_yields_identical_bytes(values, rng):
    """The tentpole property: merge is an associative, commutative fold,
    so any partition of the samples merged in any order -- pairwise,
    shuffled, tree-shaped -- serializes to identical bytes."""
    reference = _sketch_of(values).to_bytes()

    # Random partition into chunks, each chunk its own sketch.
    shuffled = list(values)
    rng.shuffle(shuffled)
    chunks, position = [], 0
    while position < len(shuffled):
        size = rng.randint(1, 5)
        chunks.append(shuffled[position:position + size])
        position += size
    sketches = [_sketch_of(chunk) for chunk in chunks]

    # Left-to-right fold over a shuffled chunk order.
    rng.shuffle(sketches)
    assert merge_all(sketches).to_bytes() == reference

    # Tree-shaped: merge random pairs until one sketch remains.
    pool = [_sketch_of(chunk) for chunk in chunks]
    while len(pool) > 1:
        rng.shuffle(pool)
        pool.append(pool.pop().merge(pool.pop()))
    survivor = pool[0] if pool else QuantileSketch()
    assert survivor.to_bytes() == reference
