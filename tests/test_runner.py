"""Unit tests for the parallel experiment runner (repro.runner).

Covers the three contracts the runner documents:

- **content addressing** — job keys are stable across processes and
  orderings, distinct for distinct specs, and incorporate the code
  fingerprint (so any source change invalidates every cached entry);
- **cache behaviour** — miss, fill, hit, corrupt-entry recovery, and
  no-cache mode;
- **equivalence** — a sweep through the runner (serial or parallel)
  produces numbers bit-identical to the plain ``evaluate_case`` path.
"""

import json
import os

import pytest

from repro.cases import Solution, evaluate_case, get_case
from repro.runner import (
    JobSpec,
    ResultCache,
    baseline_spec,
    clear_fingerprint_memo,
    code_fingerprint,
    execute_spec,
    interference_spec,
    run_jobs,
    run_sweep,
    solution_spec,
    sweep_case_ids,
)

#: Short simulated duration: long enough to clear the cases' 1 s warmup.
DURATION_S = 1.5


# ---------------------------------------------------------------------------
# Job specs and content addressing


def test_spec_roundtrip_and_equality():
    spec = JobSpec("c3", "pbox", seed=7, duration_s=2.0,
                   isolation_level=75, penalty="fixed:10000")
    clone = JobSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert hash(clone) == hash(spec)
    assert clone.to_dict() == spec.to_dict()


def test_key_is_stable_and_discriminating():
    fingerprint = "f" * 64
    spec = JobSpec("c1", "pbox", seed=1, duration_s=2.0)
    # Stable: the same spec always produces the same address.
    assert spec.key(fingerprint) == JobSpec.from_dict(
        spec.to_dict()).key(fingerprint)
    # Discriminating: every field participates in the address.
    variants = [
        JobSpec("c2", "pbox", seed=1, duration_s=2.0),
        JobSpec("c1", "cgroup", seed=1, duration_s=2.0),
        JobSpec("c1", "pbox", seed=2, duration_s=2.0),
        JobSpec("c1", "pbox", seed=1, duration_s=3.0),
        JobSpec("c1", "pbox", seed=1, duration_s=2.0, isolation_level=25),
        JobSpec("c1", "pbox", seed=1, duration_s=2.0, penalty="fixed:1000"),
        JobSpec("c1", "pbox", seed=1, duration_s=2.0, baseline_us=123.0),
    ]
    keys = {spec.key(fingerprint)}
    for variant in variants:
        keys.add(variant.key(fingerprint))
    assert len(keys) == 1 + len(variants)
    # And the code fingerprint participates too.
    assert spec.key("0" * 64) != spec.key(fingerprint)


def test_baseline_only_embedded_for_consuming_solutions():
    # make_policy ignores baseline_us for pbox/cgroup/darc, so their
    # content addresses must not depend on the measured To.
    assert solution_spec("c1", "pbox", 1, 2.0, to_us=500.0).baseline_us is None
    assert solution_spec("c1", "cgroup", 1, 2.0,
                         to_us=500.0).baseline_us is None
    assert solution_spec("c1", "parties", 1, 2.0,
                         to_us=500.0).baseline_us == 500.0
    assert solution_spec("c1", "retro", 1, 2.0,
                         to_us=500.0).baseline_us == 500.0


def test_code_fingerprint_tracks_source_changes(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "a.py").write_text("x = 1\n")
    clear_fingerprint_memo()
    first = code_fingerprint(str(tree))
    # Memoized: same root, same run, no re-walk surprises.
    assert code_fingerprint(str(tree)) == first
    # Any content change -- even a comment -- changes the fingerprint.
    (tree / "a.py").write_text("x = 1  # tweaked\n")
    clear_fingerprint_memo()
    second = code_fingerprint(str(tree))
    assert second != first
    # New files count; non-Python files do not.
    (tree / "b.py").write_text("y = 2\n")
    clear_fingerprint_memo()
    third = code_fingerprint(str(tree))
    assert third not in (first, second)
    (tree / "notes.txt").write_text("ignored\n")
    clear_fingerprint_memo()
    assert code_fingerprint(str(tree)) == third
    clear_fingerprint_memo()


# ---------------------------------------------------------------------------
# Cache behaviour


def test_cache_miss_fill_hit(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    key = "ab" + "0" * 62
    assert cache.get(key) is None
    assert cache.misses == 1
    cache.put(key, {"case_id": "c1"}, "f" * 64, {"victim_mean_us": 42.0})
    assert len(cache) == 1
    assert cache.get(key) == {"victim_mean_us": 42.0}
    assert cache.hits == 1
    # Sharded layout: objects/<key[:2]>/<key>.json
    assert os.path.exists(
        os.path.join(str(tmp_path / "cache"), "objects", "ab",
                     key + ".json"))


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    key = "cd" + "1" * 62
    cache.put(key, {}, "f" * 64, {"ok": True})
    with open(cache.path_for(key), "w") as handle:
        handle.write("{not json")
    assert cache.get(key) is None
    # The corrupt file was removed so the next put can land cleanly.
    assert not os.path.exists(cache.path_for(key))


def test_run_jobs_cache_hit_and_code_invalidation(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    spec = baseline_spec("c1", 1, DURATION_S)
    first = run_jobs([spec], cache=cache, fingerprint="f" * 64)
    assert cache.writes == 1 and cache.hits == 0
    again = run_jobs([spec], cache=cache, fingerprint="f" * 64)
    assert cache.hits == 1 and cache.writes == 1
    assert again == first
    # A different code fingerprint addresses a different object: the
    # old entry is never consulted (conservative invalidation).
    run_jobs([spec], cache=cache, fingerprint="0" * 64)
    assert cache.writes == 2
    assert len(cache) == 2


def test_run_jobs_no_cache_mode(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    spec = baseline_spec("c1", 1, DURATION_S)
    run_jobs([spec], cache=cache, use_cache=False, fingerprint="f" * 64)
    assert len(cache) == 0 and cache.writes == 0


def test_run_jobs_dedupes_and_reports_progress(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    spec = baseline_spec("c1", 1, DURATION_S)
    events = []
    results = run_jobs([spec, baseline_spec("c1", 1, DURATION_S)],
                       cache=cache, fingerprint="f" * 64,
                       progress=lambda *a: events.append(a))
    assert len(results) == 1
    assert [(done, total, cached) for done, total, _, cached, _ in events] \
        == [(1, 1, False)]


# ---------------------------------------------------------------------------
# Execution determinism and serial equivalence


def test_execute_spec_is_repeatable():
    spec = solution_spec("c1", "pbox", 1, DURATION_S).to_dict()
    first = execute_spec(spec)
    second = execute_spec(spec)
    assert first == second
    assert first["victim_samples"] > 0


def test_sweep_matches_evaluate_case(tmp_path):
    """The runner's numbers are bit-identical to the serial path."""
    solutions = [Solution.PBOX, Solution.PARTIES]
    result = run_sweep(case_ids=["c1"], solutions=solutions,
                       seeds=(1,), duration_s=DURATION_S,
                       cache=ResultCache(str(tmp_path / "cache")))
    sweep_ev = result.by_case()["c1"]
    direct_ev = evaluate_case(get_case("c1"), solutions=solutions,
                              duration_s=DURATION_S)
    assert sweep_ev.to_us == direct_ev.to_us
    assert sweep_ev.ti_us == direct_ev.ti_us
    for solution in solutions:
        assert sweep_ev.ts_us(solution) == direct_ev.ts_us(solution)
        assert sweep_ev.reduction_ratio(solution) == pytest.approx(
            direct_ev.reduction_ratio(solution))
        assert sweep_ev.normalized_tail(solution) == pytest.approx(
            direct_ev.normalized_tail(solution))


def test_sweep_cached_replay_and_json(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    kwargs = dict(case_ids=["c1"], solutions=[Solution.PBOX], seeds=(1,),
                  duration_s=DURATION_S, cache=cache)
    first = run_sweep(**kwargs)
    assert first.stats["executed"] == 3 and first.stats["cache_hits"] == 0
    replay = run_sweep(**kwargs)
    assert replay.stats["executed"] == 0 and replay.stats["cache_hits"] == 3
    assert (replay.by_case()["c1"].ts_us(Solution.PBOX)
            == first.by_case()["c1"].ts_us(Solution.PBOX))
    out = str(tmp_path / "SWEEP.json")
    replay.write_json(out)
    with open(out) as handle:
        payload = json.load(handle)
    assert payload["schema"] == 1
    entry = payload["cases"]["c1"]["seeds"]["1"]
    assert entry["to_us"] == first.by_case()["c1"].to_us
    assert "pbox" in entry["solutions"]


def test_sweep_case_ids_filtering():
    everything = sweep_case_ids()
    assert everything[0] == "c1"
    assert everything == sorted(everything, key=lambda c: int(c[1:]))
    assert sweep_case_ids("c1,c3") == ["c1", "c3"]
    # Substring match against app/resource/description.
    mysql = sweep_case_ids("mysql")
    assert mysql and all(
        "mysql" in get_case(c).app_name.lower() for c in mysql)


def test_cli_sweep_end_to_end(tmp_path, capsys):
    from repro.cli import main

    out = str(tmp_path / "SWEEP.json")
    code = main(["sweep", "--filter", "c1", "--solutions", "pbox",
                 "--duration", str(DURATION_S), "--jobs", "1",
                 "--cache-dir", str(tmp_path / "cache"), "--out", out])
    assert code == 0
    captured = capsys.readouterr().out
    assert "wrote" in captured and "SWEEP.json" in captured
    with open(out) as handle:
        payload = json.load(handle)
    assert list(payload["cases"]) == ["c1"]
    # Cached second invocation: zero executions.
    main(["sweep", "--filter", "c1", "--solutions", "pbox",
          "--duration", str(DURATION_S), "--jobs", "1",
          "--cache-dir", str(tmp_path / "cache"), "--out", out])
    assert "3 executed" not in capsys.readouterr().out
