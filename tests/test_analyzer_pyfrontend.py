"""Tests for the Python frontend of the static analyzer."""

import pytest

from repro.analyzer import Analyzer
from repro.analyzer.cfg import CFG, natural_loops
from repro.analyzer.pyfrontend import PY_WAIT_FUNCS, parse_python


def analyze(source):
    module = parse_python(source)
    return Analyzer(wait_funcs=PY_WAIT_FUNCS).analyze(module)


def test_shared_global_wait_loop_detected():
    locations = analyze("""
import time

queue_len = 0

def producer(n):
    global queue_len
    queue_len = queue_len + n

def consumer(n):
    while queue_len < n:
        time.sleep(0.01)
""")
    assert len(locations) == 1
    assert locations[0].function == "consumer"
    assert locations[0].callee == "time.sleep"
    assert locations[0].shared_vars == ("queue_len",)


def test_instance_attribute_counts_as_shared():
    locations = analyze("""
import time

class Worker:
    def put(self, item):
        self.backlog = self.backlog + 1

    def drain(self):
        while self.backlog > 0:
            time.sleep(0.001)
""")
    assert len(locations) == 1
    assert locations[0].function == "Worker.drain"
    assert "self.backlog" in locations[0].shared_vars


def test_self_waiting_loop_skipped():
    locations = analyze("""
import time

def retry(n):
    tries = 0
    while tries < n:
        time.sleep(1)
        tries = tries + 1
""")
    assert locations == []


def test_attribute_used_by_one_function_not_shared():
    locations = analyze("""
import time

class Lonely:
    def spin(self):
        while self.private_flag:
            time.sleep(0.1)
""")
    assert locations == []


def test_wait_wrapper_found_through_postdominance():
    locations = analyze("""
import time

backlog = 0

def grow(n):
    global backlog
    backlog = backlog + n

def pause(seconds):
    time.sleep(seconds)

def shrink(n):
    while backlog > n:
        pause(0.01)
""")
    assert len(locations) == 1
    assert locations[0].callee == "pause"
    assert locations[0].wait_func == "time.sleep"


def test_while_true_with_guard_inside():
    """The Python rendering of Figure 9: for(;;) with a guarded exit."""
    locations = analyze("""
import time

n_active = 0

def exit_section():
    global n_active
    n_active = n_active - 1

def enter_section(limit):
    global n_active
    while True:
        if n_active < limit:
            n_active = n_active + 1
            return
        time.sleep(0.001)
""")
    assert len(locations) == 1
    assert "n_active" in locations[0].shared_vars


def test_for_loop_over_shared_iterable():
    module = parse_python("""
items = []

def feed(x):
    items.append(x)

def walk():
    for item in items:
        handle(item)
""")
    function = module.functions["walk"]
    assert len(natural_loops(CFG(function))) == 1


def test_augmented_assignment_records_target_use():
    module = parse_python("""
total = 0

def bump(n):
    global total
    total += n
""")
    assert "total" in module.functions["bump"].variables_used()


def test_break_and_continue_lower_cleanly():
    module = parse_python("""
flag = 0

def scan(n):
    while flag < n:
        if flag == 1:
            break
        if flag == 2:
            continue
        work()
""")
    function = module.functions["scan"]
    assert len(natural_loops(CFG(function))) == 1


def test_methods_get_qualified_names():
    module = parse_python("""
class A:
    def m(self):
        return 1

def free():
    return 2
""")
    assert set(module.functions) == {"A.m", "free"}


def test_nested_call_arguments_ordered():
    module = parse_python("""
def f(x):
    outer(inner(x), x)
""")
    callees = [i.callee for _b, i in
               module.functions["f"].call_instructions()]
    assert callees == ["inner", "outer"]
