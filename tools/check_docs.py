#!/usr/bin/env python3
"""Documentation checker: links resolve, quoted commands run.

Two failure modes keep creeping into long-lived docs, and both are
mechanically checkable:

1. **Broken relative links** — a renamed or deleted file leaves
   ``[text](old/path.md)`` dangling.  Every relative link target in
   every tracked markdown file must exist on disk.
2. **Command drift** — a CLI flag is renamed and the fenced examples
   silently stop working.  Every ``python -m repro ...`` line inside a
   fenced code block is executed (in a temporary working directory,
   under ``REPRO_SMOKE=1`` so durations are clamped and sweeps are
   restricted to two cases) and must exit 0.
3. **Catalog drift** — a tracepoint added to ``CATALOG`` without a row
   in docs/OBSERVABILITY.md's catalog table.  Every catalog name must
   appear as inline code in that file.
4. **Schema drift** — a SCALE.json field added to ``SCALE_FIELDS``
   without a glossary row in docs/PERFORMANCE.md, or documented there
   without existing in the schema.  Checked in both directions, plus
   the committed ``results/SCALE.json`` may only ship fields the
   schema declares.

Usage::

    python tools/check_docs.py            # from the repo root

Exits non-zero listing every broken link / failing command.  Stdlib
only; used by ``make docs-check`` and the CI ``docs`` job.

Skipped lines: anything that is not a ``python -m repro`` invocation
(pip/pytest/make examples), and synopsis lines containing ``[`` or
``<`` placeholders.  A trailing ``# comment`` is stripped.
"""

import os
import re
import shlex
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Markdown files to check: repo root + docs/ (generated results/ and
#: the driver's ISSUE.md are not documentation).
SKIP_NAMES = {"ISSUE.md"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```")


def markdown_files():
    files = []
    for directory in (REPO, os.path.join(REPO, "docs")):
        for name in sorted(os.listdir(directory)):
            if name.endswith(".md") and name not in SKIP_NAMES:
                files.append(os.path.join(directory, name))
    return files


def check_links(path):
    """Yield error strings for unresolvable relative link targets."""
    base = os.path.dirname(path)
    with open(path) as handle:
        text = handle.read()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        if not os.path.exists(os.path.normpath(os.path.join(base, target))):
            yield "%s: broken link -> %s" % (os.path.relpath(path, REPO),
                                             match.group(1))


def fenced_repro_commands(path):
    """Yield (lineno, command) for runnable ``python -m repro`` lines."""
    in_fence = False
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if not in_fence:
                continue
            command = line.strip()
            if " #" in command:
                command = command.split(" #", 1)[0].rstrip()
            if not command.startswith("python -m repro"):
                continue
            if "[" in command or "<" in command or "…" in command:
                continue  # synopsis / placeholder, not a runnable example
            yield lineno, command


def check_catalog():
    """Yield errors for tracepoints missing from the OBSERVABILITY docs.

    The catalog table in ``docs/OBSERVABILITY.md`` is the reference for
    every tracepoint the stack fires; a point added to ``CATALOG``
    without a documented row silently drifts.  Each catalog name must
    appear as inline code (`` `name` ``) somewhere in the file.
    """
    sys.path.insert(0, os.path.join(REPO, "src"))
    try:
        from repro.obs.tracepoints import CATALOG
    finally:
        sys.path.pop(0)
    doc_path = os.path.join(REPO, "docs", "OBSERVABILITY.md")
    if not os.path.exists(doc_path):
        yield "docs/OBSERVABILITY.md: missing (tracepoint catalog docs)"
        return
    with open(doc_path) as handle:
        text = handle.read()
    for name, _desc in CATALOG:
        if "`%s`" % name not in text:
            yield ("docs/OBSERVABILITY.md: tracepoint `%s` is in the "
                   "CATALOG but undocumented" % name)


def check_scale_fields():
    """Yield errors when SCALE_FIELDS and PERFORMANCE.md disagree.

    ``repro.scale.sweep.SCALE_FIELDS`` is the schema's field registry;
    the glossary tables in ``docs/PERFORMANCE.md`` must list exactly
    those names (as a leading `` `field` `` table cell), and every key
    actually present in the committed ``results/SCALE.json`` must be
    registered.  Both directions fail: an undocumented field and a
    documented ghost are the same bug seen from opposite ends.
    """
    import json

    sys.path.insert(0, os.path.join(REPO, "src"))
    try:
        from repro.scale.sweep import SCALE_FIELDS
    finally:
        sys.path.pop(0)
    doc_path = os.path.join(REPO, "docs", "PERFORMANCE.md")
    if not os.path.exists(doc_path):
        yield "docs/PERFORMANCE.md: missing (SCALE.json field glossary)"
        return
    with open(doc_path) as handle:
        text = handle.read()
    documented = set(re.findall(r"^\| `([a-z_]+)` \|", text, re.MULTILINE))
    for field in sorted(SCALE_FIELDS):
        if field not in documented:
            yield ("docs/PERFORMANCE.md: SCALE.json field `%s` is in "
                   "SCALE_FIELDS but missing from the glossary" % field)
    for field in sorted(documented - set(SCALE_FIELDS)):
        yield ("docs/PERFORMANCE.md: glossary documents `%s`, which is "
               "not in repro.scale.sweep.SCALE_FIELDS" % field)
    scale_path = os.path.join(REPO, "results", "SCALE.json")
    if os.path.exists(scale_path):
        with open(scale_path) as handle:
            document = json.load(handle)
        shipped = set(document)
        for point in document.get("points", []):
            shipped |= set(point)
            shipped |= set(point.get("manager", {}))
        shipped.discard("telemetry")  # per-point section has its own schema
        for field in sorted(shipped - set(SCALE_FIELDS)):
            yield ("results/SCALE.json: ships field `%s`, which is not "
                   "registered in SCALE_FIELDS" % field)


def run_commands(path, workdir, env):
    """Yield error strings for fenced commands that exit non-zero."""
    for lineno, command in fenced_repro_commands(path):
        proc = subprocess.run(
            shlex.split(command), cwd=workdir, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        status = "OK" if proc.returncode == 0 else "FAIL"
        print("  [%s] %s:%d: %s"
              % (status, os.path.relpath(path, REPO), lineno, command))
        if proc.returncode != 0:
            tail = "\n".join(proc.stdout.splitlines()[-5:])
            yield "%s:%d: command failed (%d): %s\n%s" % (
                os.path.relpath(path, REPO), lineno, proc.returncode,
                command, tail)


def main():
    errors = []
    files = markdown_files()

    print("checking links in %d markdown files" % len(files))
    for path in files:
        errors.extend(check_links(path))

    print("checking the tracepoint catalog against docs/OBSERVABILITY.md")
    errors.extend(check_catalog())

    print("checking SCALE.json fields against docs/PERFORMANCE.md")
    errors.extend(check_scale_fields())

    env = dict(os.environ)
    env["REPRO_SMOKE"] = "1"
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as workdir:
        # Commands write results/ and cache files relative to cwd; give
        # them a scratch directory so doc checks never touch the repo.
        os.makedirs(os.path.join(workdir, "results"), exist_ok=True)
        env["REPRO_CACHE_DIR"] = os.path.join(workdir, ".repro-cache")
        print("running fenced `python -m repro` commands (smoke mode)")
        for path in files:
            errors.extend(run_commands(path, workdir, env))

    if errors:
        print("\n%d problem(s):" % len(errors), file=sys.stderr)
        for error in errors:
            print(" - " + error, file=sys.stderr)
        return 1
    print("docs OK: links resolve, all quoted commands run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
