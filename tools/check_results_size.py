#!/usr/bin/env python
"""Fail if any committed results/ artifact exceeds the size budget.

``results/`` holds human-reviewable snapshots (report tables, JSON
summaries); anything beyond a few tens of KB is raw data that belongs
in a digest, not in git.  CHAOS.json regressing from summary-schema
back to full per-run payloads is exactly the kind of drift this guard
catches.

Usage:
    python tools/check_results_size.py [--limit BYTES] [DIR]
"""

import argparse
import os
import sys

DEFAULT_LIMIT = 64 * 1024
DEFAULT_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def oversized(results_dir, limit):
    """(path, size) for every regular file over ``limit`` bytes."""
    found = []
    for root, _dirs, files in os.walk(results_dir):
        for name in sorted(files):
            path = os.path.join(root, name)
            size = os.path.getsize(path)
            if size > limit:
                found.append((os.path.relpath(path, results_dir), size))
    return found


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("directory", nargs="?", default=DEFAULT_DIR)
    parser.add_argument("--limit", type=int, default=DEFAULT_LIMIT,
                        help="per-file byte budget (default 64 KiB)")
    args = parser.parse_args(argv)
    if not os.path.isdir(args.directory):
        print("results dir %s absent; nothing to check" % args.directory)
        return 0
    offenders = oversized(args.directory, args.limit)
    if offenders:
        print("results files over the %d-byte budget:" % args.limit)
        for path, size in offenders:
            print("  %8d  %s" % (size, path))
        print("compact these to summary-+-digest form (see "
              "repro.faults.chaos schema 2 for the pattern).")
        return 1
    print("results size OK: %s within %d bytes" % (
        args.directory, args.limit))
    return 0


if __name__ == "__main__":
    sys.exit(main())
