#!/usr/bin/env python
"""Approximate line coverage of ``src/repro`` without coverage.py.

CI's coverage job uses ``pytest --cov=repro`` (pytest-cov); this tool
exists for environments without it.  A ``sys.settrace`` tracer records
executed lines for files under ``src/repro`` only, and each code object
stops being traced after its first few calls -- hot kernel functions
cost a dict lookup per call instead of a callback per line, which keeps
the traced suite within a few minutes.  Lines first reached only after
a function's early calls are missed, so the reported number is a mild
*under*-estimate: safe for picking a ``--cov-fail-under`` floor.

Executable-line totals come from each module's compiled code objects
(``co_lines``), the same source of truth coverage.py uses.

Usage:
    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]
"""

import os
import sys
import threading

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src", "repro")

#: Per-code-object call budget before tracing stops for that function.
TRACE_CALL_LIMIT = 8

_executed = {}
_calls = {}


def _tracer(frame, event, arg):
    code = frame.f_code
    filename = code.co_filename
    if not filename.startswith(SRC):
        return None
    if event == "call":
        seen = _calls.get(code, 0)
        if seen >= TRACE_CALL_LIMIT:
            return None
        _calls[code] = seen + 1
    elif event == "line":
        lines = _executed.get(filename)
        if lines is None:
            lines = _executed[filename] = set()
        lines.add(frame.f_lineno)
    return _tracer


def _executable_lines(path):
    """All line numbers the compiler emits for ``path``."""
    with open(path) as handle:
        source = handle.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _start, _end, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main(argv):
    import pytest

    pytest_args = argv or ["-q", "-p", "no:cacheprovider",
                           os.path.join(REPO, "tests")]
    threading.settrace(_tracer)
    sys.settrace(_tracer)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total = covered = 0
    per_file = []
    for root, _dirs, files in os.walk(SRC):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            executable = _executable_lines(path)
            hit = _executed.get(path, set()) & executable
            total += len(executable)
            covered += len(hit)
            per_file.append((os.path.relpath(path, SRC),
                             len(hit), len(executable)))

    print()
    print("%-44s %8s %8s %7s" % ("file", "covered", "lines", "pct"))
    for rel, hit, lines in per_file:
        pct = 100.0 * hit / lines if lines else 100.0
        print("%-44s %8d %8d %6.1f%%" % (rel, hit, lines, pct))
    pct = 100.0 * covered / total if total else 0.0
    print()
    print("TOTAL approximate line coverage: %d/%d = %.1f%%"
          % (covered, total, pct))
    print("(pytest exit code %s)" % exit_code)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
