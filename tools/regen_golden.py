#!/usr/bin/env python
"""Regenerate the golden-trace corpus under ``tests/golden/``.

Run via ``make regen-golden`` after an *intentional* change to kernel
scheduling, tracepoint serialization, or an app model.  Every registry
case is replayed at the canonical (solution=pbox, seed, duration) and
its digest document rewritten.  Review the diff before committing: a
golden change is a statement that the simulation's behavior was meant
to move.

Usage:
    PYTHONPATH=src python tools/regen_golden.py [--out DIR] [--case ID]...
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cases import ALL_CASES  # noqa: E402
from repro.obs.golden import run_golden_case  # noqa: E402

#: Canonical golden parameters; changing these invalidates the corpus.
#: 1.5 s clears every case's 1 s warmup with a 0.5 s steady-state
#: window, and keeps the full-corpus replay (part of tier-1) to ~12 s
#: of wall clock.
GOLDEN_SEED = 1
GOLDEN_DURATION_S = 1.5

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "tests", "golden")


def golden_path(out_dir, case_id):
    return os.path.join(out_dir, "%s.json" % case_id)


def regenerate(case_ids, out_dir):
    os.makedirs(out_dir, exist_ok=True)
    for case_id in case_ids:
        started = time.time()
        doc = run_golden_case(case_id, GOLDEN_DURATION_S, GOLDEN_SEED)
        doc["case_id"] = case_id
        doc["seed"] = GOLDEN_SEED
        doc["duration_s"] = GOLDEN_DURATION_S
        path = golden_path(out_dir, case_id)
        with open(path, "w") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print("%-4s %8d events  %s  (%.2fs)" % (
            case_id, doc["events"], doc["digest"][:16], time.time() - started))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output directory (default tests/golden)")
    parser.add_argument("--case", action="append", dest="cases",
                        help="limit to specific case ids (repeatable)")
    args = parser.parse_args(argv)
    ordered = sorted(ALL_CASES, key=lambda cid: int(cid[1:]))
    case_ids = args.cases if args.cases else ordered
    regenerate(case_ids, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
